"""Tests for ``tools.analyze`` (dhslint).

Each rule code gets a fixture snippet that triggers it and one that is
clean (or suppressed); a subprocess smoke test asserts the shipped tree
passes and that the CLI's exit codes / JSON output behave.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from tools.analyze import Config, analyze_file, analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def lint(tmp_path: Path, source: str, module: str | None = None, config: Config | None = None):
    """Write ``source`` to a file and return its violation codes."""
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(source))
    violations, suppressed = analyze_file(path, config or Config(), module=module)
    return [v.code for v in violations], suppressed


# ----------------------------------------------------------------------
# DHS101 — unseeded RNG
# ----------------------------------------------------------------------
class TestUnseededRng:
    def test_module_level_random_flagged(self, tmp_path):
        codes, _ = lint(tmp_path, "import random\nx = random.random()\n")
        assert codes == ["DHS101"]

    def test_direct_random_construction_flagged(self, tmp_path):
        codes, _ = lint(tmp_path, "import random\nrng = random.Random(7)\n")
        assert codes == ["DHS101"]

    def test_from_import_alias_flagged(self, tmp_path):
        codes, _ = lint(tmp_path, "from random import randint as ri\nx = ri(0, 9)\n")
        assert codes == ["DHS101"]

    def test_numpy_global_rng_flagged(self, tmp_path):
        codes, _ = lint(tmp_path, "import numpy as np\nx = np.random.rand(3)\n")
        assert codes == ["DHS101"]

    def test_unseeded_default_rng_flagged(self, tmp_path):
        codes, _ = lint(tmp_path, "import numpy as np\nr = np.random.default_rng()\n")
        assert codes == ["DHS101"]

    def test_seeded_default_rng_clean(self, tmp_path):
        codes, _ = lint(tmp_path, "import numpy as np\nr = np.random.default_rng(42)\n")
        assert codes == []

    def test_seed_root_module_exempt(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "import random\nrng = random.Random(7)\n",
            module="repro.sim.seeds",
        )
        assert codes == []

    def test_instance_rng_use_clean(self, tmp_path):
        codes, _ = lint(tmp_path, "def f(rng):\n    return rng.random()\n")
        assert codes == []


# ----------------------------------------------------------------------
# DHS102 — wall clock / entropy
# ----------------------------------------------------------------------
class TestWallClock:
    def test_time_time_flagged(self, tmp_path):
        codes, _ = lint(tmp_path, "import time\nnow = time.time()\n")
        assert codes == ["DHS102"]

    def test_datetime_now_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path, "from datetime import datetime\nd = datetime.now()\n"
        )
        assert codes == ["DHS102"]

    def test_os_urandom_flagged(self, tmp_path):
        codes, _ = lint(tmp_path, "import os\nb = os.urandom(8)\n")
        assert codes == ["DHS102"]

    def test_logical_time_clean(self, tmp_path):
        codes, _ = lint(tmp_path, "def sweep(now: int) -> int:\n    return now + 1\n")
        assert codes == []


# ----------------------------------------------------------------------
# DHS103 — builtin hash()
# ----------------------------------------------------------------------
class TestBuiltinHash:
    def test_hash_call_flagged(self, tmp_path):
        codes, _ = lint(tmp_path, "key = hash('item')\n")
        assert codes == ["DHS103"]

    def test_hash_inside_dunder_hash_clean(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            """
            class Family:
                def __hash__(self) -> int:
                    return hash((type(self).__name__, 3))
            """,
        )
        assert codes == []

    def test_method_named_hash_clean(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            """
            class Family:
                def hash(self, item):
                    return 7
            f = Family()
            x = f.hash('a')
            """,
        )
        assert codes == []


# ----------------------------------------------------------------------
# DHS2xx — layering
# ----------------------------------------------------------------------
def make_package(root: Path, files: dict) -> Path:
    """Materialize a mini ``repro`` package tree with ``__init__.py`` files."""
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        for ancestor in path.relative_to(root).parents:
            if str(ancestor) != ".":
                (root / ancestor / "__init__.py").touch()
        path.write_text(textwrap.dedent(body))
    return root / "repro"


class TestLayering:
    def test_upward_import_flagged(self, tmp_path):
        pkg = make_package(
            tmp_path, {"repro/sketches/est.py": "from repro.core.dhs import X\n"}
        )
        report = analyze_paths([pkg], Config())
        assert [v.code for v in report.violations] == ["DHS201"]
        assert "upward" in report.violations[0].message

    def test_same_layer_import_flagged(self, tmp_path):
        pkg = make_package(
            tmp_path, {"repro/sketches/est.py": "from repro.sim.seeds import rng_for\n"}
        )
        report = analyze_paths([pkg], Config())
        assert [v.code for v in report.violations] == ["DHS201"]
        assert "same-layer" in report.violations[0].message

    def test_relative_upward_import_flagged(self, tmp_path):
        pkg = make_package(
            tmp_path, {"repro/sketches/est.py": "from ..core import dhs\n"}
        )
        report = analyze_paths([pkg], Config())
        assert [v.code for v in report.violations] == ["DHS201"]

    def test_downward_import_clean(self, tmp_path):
        pkg = make_package(
            tmp_path,
            {"repro/core/engine.py": "from repro.sketches.base import HashSketch\n"},
        )
        report = analyze_paths([pkg], Config())
        assert report.violations == []

    def test_hashing_must_stay_self_contained(self, tmp_path):
        pkg = make_package(
            tmp_path, {"repro/hashing/mix.py": "from repro.errors import ReproError\n"}
        )
        report = analyze_paths([pkg], Config())
        assert [v.code for v in report.violations] == ["DHS202"]

    def test_hashing_internal_import_clean(self, tmp_path):
        pkg = make_package(
            tmp_path, {"repro/hashing/mix.py": "from repro.hashing.bits import rho\n"}
        )
        report = analyze_paths([pkg], Config())
        assert report.violations == []

    def test_unassigned_package_flagged(self, tmp_path):
        pkg = make_package(tmp_path, {"repro/mystery/mod.py": "x = 1\n"})
        report = analyze_paths([pkg], Config())
        # One DHS203 per file of the unassigned package (init + module).
        assert set(v.code for v in report.violations) == {"DHS203"}
        assert len(report.violations) == 2


# ----------------------------------------------------------------------
# DHS301 — float equality
# ----------------------------------------------------------------------
class TestFloatEquality:
    def test_float_literal_comparison_flagged(self, tmp_path):
        codes, _ = lint(tmp_path, "def f(x):\n    return x == 0.5\n")
        assert codes == ["DHS301"]

    def test_division_comparison_flagged(self, tmp_path):
        codes, _ = lint(tmp_path, "def f(a, b, c):\n    return a / b != c\n")
        assert codes == ["DHS301"]

    def test_math_call_comparison_flagged(self, tmp_path):
        codes, _ = lint(tmp_path, "import math\ndef f(x, y):\n    return math.log(x) == y\n")
        assert codes == ["DHS301"]

    def test_isclose_clean(self, tmp_path):
        codes, _ = lint(
            tmp_path, "import math\ndef f(x):\n    return math.isclose(x, 0.5)\n"
        )
        assert codes == []

    def test_int_comparison_clean(self, tmp_path):
        codes, _ = lint(tmp_path, "def f(x: int) -> bool:\n    return x == 5\n")
        assert codes == []

    def test_rule_scoped_to_estimator_packages(self, tmp_path):
        source = "def f(x):\n    return x == 0.5\n"
        flagged, _ = lint(tmp_path, source, module="repro.sketches.pcsa")
        exempt, _ = lint(tmp_path, source, module="repro.overlay.chord")
        assert flagged == ["DHS301"]
        assert exempt == []


# ----------------------------------------------------------------------
# DHS4xx — generic hygiene
# ----------------------------------------------------------------------
class TestGenericRules:
    def test_mutable_default_flagged(self, tmp_path):
        codes, _ = lint(tmp_path, "def f(xs=[]):\n    return xs\n")
        assert codes == ["DHS401"]

    def test_mutable_call_default_flagged(self, tmp_path):
        codes, _ = lint(tmp_path, "def f(xs=dict()):\n    return xs\n")
        assert codes == ["DHS401"]

    def test_none_default_clean(self, tmp_path):
        codes, _ = lint(tmp_path, "def f(xs=None):\n    return xs or []\n")
        assert codes == []

    def test_bare_except_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path, "try:\n    x = 1\nexcept:\n    x = 2\n"
        )
        assert codes == ["DHS402"]

    def test_broad_except_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path, "try:\n    x = 1\nexcept Exception:\n    x = 2\n"
        )
        assert codes == ["DHS402"]

    def test_reraising_handler_clean(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "try:\n    x = 1\nexcept Exception:\n    raise RuntimeError('ctx')\n",
        )
        assert codes == []

    def test_narrow_except_clean(self, tmp_path):
        codes, _ = lint(
            tmp_path, "try:\n    x = 1\nexcept ValueError:\n    x = 2\n"
        )
        assert codes == []

    def test_all_lists_undefined_name(self, tmp_path):
        codes, _ = lint(tmp_path, "__all__ = ['ghost']\n")
        assert codes == ["DHS403"]

    def test_public_def_missing_from_all(self, tmp_path):
        codes, _ = lint(
            tmp_path, "__all__ = ['f']\n\ndef f():\n    pass\n\ndef g():\n    pass\n"
        )
        assert codes == ["DHS403"]

    def test_private_def_not_required(self, tmp_path):
        codes, _ = lint(
            tmp_path, "__all__ = ['f']\n\ndef f():\n    pass\n\ndef _g():\n    pass\n"
        )
        assert codes == []

    def test_module_without_all_not_checked(self, tmp_path):
        codes, _ = lint(tmp_path, "def f():\n    pass\n")
        assert codes == []


# ----------------------------------------------------------------------
# DHS501 — ad-hoc process pools
# ----------------------------------------------------------------------
class TestAdHocProcessPool:
    def test_multiprocessing_import_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path, "import multiprocessing\n", module="repro.experiments.foo"
        )
        assert codes == ["DHS501"]

    def test_concurrent_futures_import_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "from concurrent.futures import ProcessPoolExecutor\n",
            module="repro.core.count",
        )
        assert codes == ["DHS501"]

    def test_os_fork_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path, "import os\npid = os.fork()\n", module="repro.overlay.chord"
        )
        assert codes == ["DHS501"]

    def test_parallel_root_exempt(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "import multiprocessing\nfrom concurrent.futures import ProcessPoolExecutor\n",
            module="repro.sim.parallel",
        )
        assert codes == []

    def test_outside_package_not_checked(self, tmp_path):
        codes, _ = lint(tmp_path, "import multiprocessing\n")
        assert codes == []

    def test_regstore_shared_memory_import_exempt(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "from multiprocessing import shared_memory\n",
            module="repro.core.regstore",
        )
        assert codes == []

    def test_regstore_dotted_shared_memory_import_exempt(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "import multiprocessing.shared_memory\n",
            module="repro.core.regstore",
        )
        assert codes == []

    def test_regstore_pool_import_still_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "from multiprocessing import Pool\n",
            module="repro.core.regstore",
        )
        assert codes == ["DHS501"]


# ----------------------------------------------------------------------
# DHS901 — shared memory outside repro.core.regstore
# ----------------------------------------------------------------------
class TestSharedMemoryOutsideRegstore:
    def test_from_import_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "from multiprocessing import shared_memory\n",
            module="repro.core.count",
        )
        assert codes == ["DHS501", "DHS901"]

    def test_dotted_import_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "import multiprocessing.shared_memory\n",
            module="repro.sim.timeline",
        )
        assert codes == ["DHS501", "DHS901"]

    def test_submodule_from_import_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "from multiprocessing.shared_memory import SharedMemory\n",
            module="repro.obs.metrics",
        )
        assert codes == ["DHS501", "DHS901"]

    def test_parallel_root_not_exempt(self, tmp_path):
        # DHS501 exempts repro.sim.parallel; DHS901 still bans segments.
        codes, _ = lint(
            tmp_path,
            "from multiprocessing import shared_memory\n"
            "shm = shared_memory.SharedMemory(create=True, size=64)\n",
            module="repro.sim.parallel",
        )
        assert codes == ["DHS901", "DHS901"]

    def test_regstore_exempt(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "from multiprocessing import shared_memory\n"
            "shm = shared_memory.SharedMemory(create=True, size=64)\n",
            module="repro.core.regstore",
        )
        assert codes == []

    def test_outside_package_not_checked(self, tmp_path):
        codes, _ = lint(tmp_path, "import multiprocessing.shared_memory\n")
        assert codes == []


# ----------------------------------------------------------------------
# DHS1001 — digest computation over register state outside antientropy
# ----------------------------------------------------------------------
class TestDigestOutsideAntientropy:
    def test_hashlib_next_to_regstore_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "import hashlib\n"
            "from repro.core.regstore import RegArena\n"
            "d = hashlib.blake2b(b'row', digest_size=16)\n",
            module="repro.core.maintenance",
        )
        # Both the import and the call are flagged.
        assert codes == ["DHS1001", "DHS1001"]

    def test_from_import_forms_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "from hashlib import blake2b\n"
            "from repro.core import regstore\n"
            "d = blake2b(b'row')\n",
            module="repro.experiments.soak",
        )
        assert codes == ["DHS1001", "DHS1001"]

    def test_antientropy_module_exempt(self, tmp_path):
        # The same snippet would trip DHS201 too (overlay importing
        # core) — the real module duck-types arenas for exactly that
        # reason; here only the DHS1001 exemption is under test.
        codes, _ = lint(
            tmp_path,
            "import hashlib\n"
            "from repro.core.regstore import RegArena\n"
            "d = hashlib.blake2b(b'row')\n",
            module="repro.overlay.antientropy",
        )
        assert "DHS1001" not in codes

    def test_hashlib_without_regstore_clean(self, tmp_path):
        # workloads/relations.py hashes relation names — no register
        # state in sight, so no canonicalization to fork.
        codes, _ = lint(
            tmp_path,
            "import hashlib\nd = hashlib.blake2b(b'relation').digest()\n",
            module="repro.workloads.relations",
        )
        assert codes == []

    def test_regstore_without_hashlib_clean(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "from repro.core.regstore import RegArena\narena = None\n",
            module="repro.core.maintenance",
        )
        assert codes == []

    def test_outside_package_not_checked(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "import hashlib\nfrom repro.core.regstore import RegArena\n",
        )
        assert codes == []


# ----------------------------------------------------------------------
# DHS502 — unseeded TrialSpec in experiment drivers
# ----------------------------------------------------------------------
class TestUnseededTrialSpec:
    HEADER = "from repro.sim.parallel import TrialSpec\n\ndef f():\n    pass\n\n"

    def test_missing_seed_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            self.HEADER + "spec = TrialSpec(fn=f)\n",
            module="repro.experiments.accuracy",
        )
        assert codes == ["DHS502"]

    def test_literal_seed_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            self.HEADER + "spec = TrialSpec(fn=f, seed=0)\n",
            module="repro.experiments.accuracy",
        )
        assert codes == ["DHS502"]

    def test_positional_literal_seed_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            self.HEADER + "spec = TrialSpec(f, 42)\n",
            module="repro.experiments.accuracy",
        )
        assert codes == ["DHS502"]

    def test_derived_seed_clean(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            self.HEADER
            + "def build(seed):\n    return TrialSpec(fn=f, seed=seed)\n",
            module="repro.experiments.accuracy",
        )
        assert codes == []

    def test_outside_experiments_not_checked(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            self.HEADER + "spec = TrialSpec(fn=f)\n",
            module="repro.sim.parallel_helpers",
        )
        assert codes == []


# ----------------------------------------------------------------------
# DHS601 — real-time waits in the simulation package
# ----------------------------------------------------------------------
class TestRealTimeWait:
    def test_time_sleep_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "import time\ntime.sleep(0.5)\n",
            module="repro.overlay.faults",
        )
        assert codes == ["DHS601"]

    def test_from_import_alias_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "from time import sleep as zzz\nzzz(1)\n",
            module="repro.core.policy",
        )
        assert codes == ["DHS601"]

    def test_asyncio_sleep_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "import asyncio\n\nasync def f():\n    await asyncio.sleep(1)\n",
            module="repro.core.maintenance",
        )
        assert codes == ["DHS601"]

    def test_threading_timer_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "import threading\nt = threading.Timer(5.0, print)\n",
            module="repro.sim.churn",
        )
        assert codes == ["DHS601"]

    def test_outside_package_not_checked(self, tmp_path):
        # Benchmarks / tools may legitimately sleep (e.g. warm-up loops);
        # the rule polices only the simulation package itself.
        codes, _ = lint(tmp_path, "import time\ntime.sleep(0.5)\n")
        assert codes == []

    def test_logical_clock_clean(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "def wait(injector, ticks):\n"
            "    injector.advance_to(injector.clock + ticks)\n",
            module="repro.overlay.faults",
        )
        assert codes == []


# ----------------------------------------------------------------------
# DHS701 — ad-hoc console output
# ----------------------------------------------------------------------
class TestAdHocOutput:
    def test_print_in_library_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "def walk(result):\n    print('probes', result.probes)\n",
            module="repro.core.count",
        )
        assert codes == ["DHS701"]

    def test_stdout_write_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "import sys\nsys.stdout.write('hops\\n')\n",
            module="repro.overlay.chord",
        )
        assert codes == ["DHS701"]

    def test_stderr_write_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "import sys\nsys.stderr.write('oops\\n')\n",
            module="repro.sim.parallel",
        )
        assert codes == ["DHS701"]

    def test_pprint_flagged(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "from pprint import pprint\npprint({'hops': 3})\n",
            module="repro.experiments.accuracy",
        )
        assert codes == ["DHS701"]

    def test_cli_exempt(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "print('report written')\n",
            module="repro.cli",
        )
        assert codes == []

    def test_obs_package_exempt(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "import sys\nsys.stdout.write('span tree\\n')\n",
            module="repro.obs.export",
        )
        assert codes == []

    def test_outside_package_not_checked(self, tmp_path):
        # Benchmarks, tools and tests print freely; the rule polices the
        # library package only.
        codes, _ = lint(tmp_path, "print('bench done')\n")
        assert codes == []

    def test_metrics_call_clean(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "from repro.obs import runtime as obs\n"
            "def record(hops):\n"
            "    if obs.METERING:\n"
            "        obs.METRICS.observe('dhs.lookup.hops', hops)\n",
            module="repro.core.count",
        )
        assert codes == []


# ----------------------------------------------------------------------
# Suppressions and config
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_inline_disable_suppresses(self, tmp_path):
        codes, suppressed = lint(
            tmp_path,
            "import random\nx = random.random()  # dhslint: disable=DHS101\n",
        )
        assert codes == []
        assert suppressed == 1

    def test_disable_all_suppresses(self, tmp_path):
        codes, suppressed = lint(
            tmp_path,
            "import time\nnow = time.time()  # dhslint: disable=all\n",
        )
        assert codes == []
        assert suppressed == 1

    def test_disable_wrong_code_keeps_violation(self, tmp_path):
        codes, suppressed = lint(
            tmp_path,
            "import time\nnow = time.time()  # dhslint: disable=DHS101\n",
        )
        assert codes == ["DHS102"]
        assert suppressed == 0

    def test_project_wide_disable(self, tmp_path):
        codes, _ = lint(
            tmp_path,
            "import time\nnow = time.time()\n",
            config=Config(disable=("DHS102",)),
        )
        assert codes == []


# ----------------------------------------------------------------------
# CLI end-to-end
# ----------------------------------------------------------------------
def run_cli(*args: str, cwd: Path = REPO_ROOT) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.run(
        [sys.executable, "-m", "tools.analyze", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env=env,
    )


class TestCli:
    def test_shipped_tree_is_clean(self):
        result = run_cli("src/repro")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 violation(s)" in result.stdout

    def test_violations_exit_nonzero_with_code(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        result = run_cli(str(bad))
        assert result.returncode == 1
        assert "DHS101" in result.stdout

    def test_json_format(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nx = time.time()\n")
        result = run_cli("--format", "json", str(bad))
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["counts"] == {"DHS102": 1}
        assert payload["violations"][0]["line"] == 2

    def test_missing_path_is_usage_error(self):
        result = run_cli("does/not/exist")
        assert result.returncode == 2

    def test_syntax_error_reported(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        result = run_cli(str(bad))
        assert result.returncode == 2
        assert "syntax error" in result.stdout

    def test_list_rules_names_every_code(self):
        result = run_cli("--list-rules")
        assert result.returncode == 0
        for code in (
            "DHS101", "DHS102", "DHS103",
            "DHS201", "DHS202", "DHS203",
            "DHS301", "DHS401", "DHS402", "DHS403",
            "DHS501", "DHS502", "DHS601", "DHS901", "DHS1001",
            # Whole-program dataflow rules.
            "DHS801", "DHS802", "DHS803",
            "DHS811", "DHS812", "DHS813",
            "DHS821", "DHS822",
        ):
            assert code in result.stdout

    def test_shipped_tree_is_dataflow_clean(self):
        result = run_cli("--dataflow", "--no-cache", "src/repro")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 violation(s)" in result.stdout
        assert "dataflow [" in result.stdout

    def test_sarif_format(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nx = time.time()\n")
        result = run_cli("--format", "sarif", str(bad), cwd=tmp_path)
        assert result.returncode == 1
        sarif = json.loads(result.stdout)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "dhslint"
        assert run["results"][0]["ruleId"] == "DHS102"
        region = run["results"][0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2

    def test_github_format(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nx = time.time()\n")
        result = run_cli("--format", "github", str(bad), cwd=tmp_path)
        assert result.returncode == 1
        assert "::error file=" in result.stdout
        assert "title=DHS102" in result.stdout

    def test_output_file(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nx = time.time()\n")
        out = tmp_path / "report.sarif"
        result = run_cli(
            "--format", "sarif", "--output", str(out), str(bad), cwd=tmp_path
        )
        assert result.returncode == 1
        assert json.loads(out.read_text())["version"] == "2.1.0"

    def test_cache_hit_rate_printed_and_bypassed(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("def f():\n    return 1\n")
        cold = run_cli("--cache-file", str(tmp_path / "c.json"), str(mod), cwd=tmp_path)
        assert cold.returncode == 0
        assert "cache 0/1 hit(s) (0%)" in cold.stdout
        warm = run_cli("--cache-file", str(tmp_path / "c.json"), str(mod), cwd=tmp_path)
        assert "cache 1/1 hit(s) (100%)" in warm.stdout
        uncached = run_cli("--no-cache", str(mod), cwd=tmp_path)
        assert "cache" not in uncached.stdout

    def test_waivers_flag_round_trip(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nx = time.time()\n")
        waivers = tmp_path / ".dhslint-waivers"
        waivers.write_text(
            "DHS102  bad.py  expires=2099-01-01  fixture clock is intentional\n"
        )
        result = run_cli(str(bad), cwd=tmp_path)
        assert result.returncode == 0, result.stdout
        assert "1 violation(s) waived" in result.stdout

    def test_pyproject_config_is_honoured(self, tmp_path):
        # A custom layer map in the fixture's pyproject.toml flips the
        # verdict: `alpha` may import `beta` only if beta sits lower.
        make_package(tmp_path, {"repro/alpha/a.py": "from repro.beta import b\n"})
        make_package(tmp_path, {"repro/beta/b.py": "x = 1\n"})
        (tmp_path / "pyproject.toml").write_text(
            '[tool.dhslint]\npackage = "repro"\nlayers = [["beta"], ["alpha"]]\n'
        )
        clean = run_cli(str(tmp_path / "repro"), cwd=tmp_path)
        assert clean.returncode == 0, clean.stdout
        (tmp_path / "pyproject.toml").write_text(
            '[tool.dhslint]\npackage = "repro"\nlayers = [["alpha"], ["beta"]]\n'
        )
        flagged = run_cli(str(tmp_path / "repro"), cwd=tmp_path)
        assert flagged.returncode == 1
        assert "DHS201" in flagged.stdout


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-q"]))
