"""Tests for the advanced histogram constructions (footnote 5)."""

from itertools import combinations

import numpy as np
import pytest

from repro.errors import HistogramError
from repro.histograms.advanced import (
    aggregate_micro,
    compressed_boundaries,
    derive_histogram,
    maxdiff_boundaries,
    v_optimal_boundaries,
)
from repro.histograms.buckets import BucketSpec
from repro.histograms.histogram import Histogram


def micro_hist(counts, amin=1):
    spec = BucketSpec.equi_width(amin, amin + len(counts) - 1, len(counts))
    return Histogram.from_counts(spec, [float(c) for c in counts])


def sse_of_partition(counts, cuts):
    """Brute-force SSE of a partition given cut positions."""
    edges = [0] + sorted(cuts) + [len(counts)]
    total = 0.0
    for a, b in zip(edges, edges[1:]):
        chunk = np.asarray(counts[a:b], dtype=float)
        total += float(((chunk - chunk.mean()) ** 2).sum())
    return total


class TestVOptimal:
    def test_matches_brute_force(self):
        counts = [5, 5, 50, 52, 5, 6, 90, 4]
        micro = micro_hist(counts)
        n_buckets = 3
        spec = v_optimal_boundaries(micro, n_buckets)
        got_cuts = [micro.spec.boundaries.index(b) for b in spec.boundaries[1:-1]]
        best = min(
            sse_of_partition(counts, cuts)
            for cuts in combinations(range(1, len(counts)), n_buckets - 1)
        )
        assert sse_of_partition(counts, got_cuts) == pytest.approx(best)

    def test_isolates_spikes(self):
        counts = [1, 1, 1, 100, 1, 1, 1, 1]
        spec = v_optimal_boundaries(micro_hist(counts), 3)
        # The spike micro-bucket [4, 5) must sit alone.
        assert 4.0 in spec.boundaries
        assert 5.0 in spec.boundaries

    def test_single_bucket(self):
        spec = v_optimal_boundaries(micro_hist([1, 2, 3]), 1)
        assert spec.n_buckets == 1

    def test_full_budget_is_identity(self):
        micro = micro_hist([3, 1, 4, 1])
        spec = v_optimal_boundaries(micro, 4)
        assert spec.boundaries == micro.spec.boundaries

    def test_budget_validation(self):
        with pytest.raises(HistogramError):
            v_optimal_boundaries(micro_hist([1, 2]), 3)
        with pytest.raises(HistogramError):
            v_optimal_boundaries(micro_hist([1, 2]), 0)


class TestMaxDiff:
    def test_cuts_at_largest_jumps(self):
        counts = [10, 10, 10, 90, 90, 10, 10, 10]
        spec = maxdiff_boundaries(micro_hist(counts), 3)
        # Jumps at 3->90 and 90->10: cuts after micro 2 and micro 4.
        assert 4.0 in spec.boundaries  # boundary of micro index 3
        assert 6.0 in spec.boundaries  # boundary of micro index 5

    def test_bucket_count(self):
        spec = maxdiff_boundaries(micro_hist(range(10)), 4)
        assert spec.n_buckets == 4


class TestCompressed:
    def test_heavy_buckets_become_singletons(self):
        counts = [1, 1, 200, 1, 1, 1, 150, 1, 1, 1]
        spec = compressed_boundaries(micro_hist(counts), 6, n_singletons=2)
        # Both heavy micro-buckets [3,4) and [7,8) isolated.
        for edge in (3.0, 4.0, 7.0, 8.0):
            assert edge in spec.boundaries

    def test_budget_respected(self):
        counts = [1] * 20
        spec = compressed_boundaries(micro_hist(counts), 5)
        assert spec.n_buckets <= 5

    def test_singleton_validation(self):
        with pytest.raises(HistogramError):
            compressed_boundaries(micro_hist([1] * 10), 3, n_singletons=3)


class TestAggregate:
    def test_counts_preserved(self):
        micro = micro_hist([1, 2, 3, 4, 5, 6])
        for kind in ("equi_width", "v_optimal", "maxdiff", "compressed"):
            derived = derive_histogram(micro, kind, 3)
            assert derived.total == pytest.approx(micro.total)

    def test_aggregate_values(self):
        micro = micro_hist([1, 2, 3, 4])
        spec = BucketSpec.from_boundaries([1.0, 3.0, 5.0])
        derived = aggregate_micro(micro, spec)
        assert derived.counts == [3.0, 7.0]

    def test_unknown_kind(self):
        with pytest.raises(HistogramError):
            derive_histogram(micro_hist([1, 2]), "wavelet", 1)


class TestEstimationQuality:
    def test_v_optimal_beats_equi_width_on_skew(self):
        """The reason these exist: on skewed data, variance-aware buckets
        estimate range selectivities better at equal budget."""
        rng = np.random.default_rng(5)
        from repro.workloads.zipf import ZipfGenerator

        values = ZipfGenerator(400, theta=1.0).sample(100_000, seed=3)
        micro_spec = BucketSpec.equi_width(1, 400, 100)
        micro = Histogram.exact(micro_spec, values)
        budget = 10
        candidates = {
            kind: derive_histogram(micro, kind, budget)
            for kind in ("equi_width", "v_optimal", "maxdiff")
        }

        def mean_range_error(histogram):
            """Narrow ranges: where within-bucket uniformity bites."""
            errors = []
            for _ in range(300):
                lo = rng.integers(1, 385)
                hi = lo + rng.integers(1, 16)
                truth = float(((values >= lo) & (values < hi)).sum())
                if truth < 50:
                    continue
                errors.append(abs(histogram.estimate_range(lo, hi) - truth) / truth)
            return sum(errors) / len(errors)

        assert mean_range_error(candidates["v_optimal"]) <= mean_range_error(
            candidates["equi_width"]
        )


class TestEquiDepth:
    def test_buckets_carry_similar_mass(self):
        from repro.histograms.advanced import equi_depth_boundaries

        counts = [100, 1, 1, 1, 1, 1, 1, 100, 1, 94]
        micro = micro_hist(counts)
        spec = equi_depth_boundaries(micro, 3)
        derived = aggregate_micro(micro, spec)
        assert derived.total == sum(counts)
        # Each bucket within 2x of the ideal third of the mass.
        ideal = sum(counts) / 3
        for count in derived.counts:
            assert count <= 2 * ideal

    def test_uniform_data_gives_equal_widths(self):
        from repro.histograms.advanced import equi_depth_boundaries

        micro = micro_hist([10] * 12)
        spec = equi_depth_boundaries(micro, 4)
        widths = [spec.bucket_width(i) for i in range(spec.n_buckets)]
        assert max(widths) <= 2 * min(widths)

    def test_empty_micro_histogram(self):
        from repro.histograms.advanced import equi_depth_boundaries

        spec = equi_depth_boundaries(micro_hist([0, 0, 0, 0]), 2)
        assert spec.n_buckets >= 1

    def test_derive_kind(self):
        derived = derive_histogram(micro_hist([5, 1, 1, 5]), "equi_depth", 2)
        assert derived.total == 12.0
