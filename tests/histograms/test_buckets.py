"""Tests for bucket specifications."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HistogramError
from repro.histograms.buckets import BucketSpec


class TestEquiWidth:
    def test_paper_partitioning(self):
        # D = [1, 100], I = 10: S = 10, B_i = [1 + 10i, 1 + 10(i+1))
        spec = BucketSpec.equi_width(1, 100, 10)
        assert spec.n_buckets == 10
        assert spec.bucket_range(0) == (1.0, 11.0)
        assert spec.bucket_range(9) == (91.0, 101.0)

    def test_widths_equal(self):
        spec = BucketSpec.equi_width(1, 1000, 7)
        widths = [spec.bucket_width(i) for i in range(7)]
        assert max(widths) == pytest.approx(min(widths))

    def test_single_bucket(self):
        spec = BucketSpec.equi_width(5, 10, 1)
        assert spec.bucket_range(0) == (5.0, 11.0)

    def test_invalid(self):
        with pytest.raises(HistogramError):
            BucketSpec.equi_width(1, 100, 0)
        with pytest.raises(HistogramError):
            BucketSpec.equi_width(100, 1, 5)


class TestCustomBoundaries:
    def test_non_equi_width(self):
        spec = BucketSpec.from_boundaries([0, 1, 10, 100])
        assert spec.n_buckets == 3
        assert spec.bucket_width(0) == 1
        assert spec.bucket_width(2) == 90

    def test_rejects_non_ascending(self):
        with pytest.raises(HistogramError):
            BucketSpec.from_boundaries([0, 5, 5, 10])
        with pytest.raises(HistogramError):
            BucketSpec.from_boundaries([10])


class TestBucketIndex:
    def test_boundaries_belong_to_right_bucket(self):
        spec = BucketSpec.equi_width(1, 100, 10)
        assert spec.bucket_index(1) == 0
        assert spec.bucket_index(10.999) == 0
        assert spec.bucket_index(11) == 1
        assert spec.bucket_index(100) == 9

    def test_out_of_domain_rejected(self):
        spec = BucketSpec.equi_width(1, 100, 10)
        with pytest.raises(HistogramError):
            spec.bucket_index(0)
        with pytest.raises(HistogramError):
            spec.bucket_index(101)

    def test_vectorized_matches_scalar(self):
        spec = BucketSpec.equi_width(1, 1000, 13)
        values = np.arange(1, 1001)
        vectorized = spec.bucket_indices(values)
        for value, index in zip(values[::37], vectorized[::37]):
            assert spec.bucket_index(value) == index

    def test_vectorized_rejects_out_of_domain(self):
        spec = BucketSpec.equi_width(1, 100, 10)
        with pytest.raises(HistogramError):
            spec.bucket_indices(np.array([0, 5]))

    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=10_000),
    )
    def test_every_value_has_exactly_one_bucket(self, n_buckets, value):
        spec = BucketSpec.equi_width(1, 10_000, n_buckets)
        index = spec.bucket_index(value)
        lo, hi = spec.bucket_range(index)
        assert lo <= value < hi


class TestRanges:
    def test_all_ranges_cover_domain(self):
        spec = BucketSpec.equi_width(1, 997, 13)
        ranges = spec.all_ranges()
        assert ranges[0][0] == 1.0
        assert ranges[-1][1] == 998.0
        for (a_lo, a_hi), (b_lo, b_hi) in zip(ranges, ranges[1:]):
            assert a_hi == b_lo

    def test_bucket_range_validation(self):
        spec = BucketSpec.equi_width(1, 100, 10)
        with pytest.raises(HistogramError):
            spec.bucket_range(10)
