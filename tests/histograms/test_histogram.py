"""Tests for histograms and selectivity estimation."""

import numpy as np
import pytest

from repro.errors import HistogramError
from repro.histograms.buckets import BucketSpec
from repro.histograms.histogram import Histogram

SPEC = BucketSpec.equi_width(1, 100, 10)


class TestConstruction:
    def test_exact_counts(self):
        values = np.array([1, 5, 10, 11, 50, 100])
        histogram = Histogram.exact(SPEC, values)
        assert histogram.counts[0] == 3  # 1, 5, 10
        assert histogram.counts[1] == 1  # 11
        assert histogram.counts[4] == 1  # 50
        assert histogram.counts[9] == 1  # 100
        assert histogram.total == 6

    def test_from_counts(self):
        histogram = Histogram.from_counts(SPEC, [1.0] * 10)
        assert histogram.total == 10

    def test_count_length_checked(self):
        with pytest.raises(HistogramError):
            Histogram.from_counts(SPEC, [1.0] * 9)

    def test_negative_counts_rejected(self):
        with pytest.raises(HistogramError):
            Histogram.from_counts(SPEC, [-1.0] + [0.0] * 9)


class TestRangeEstimation:
    def test_whole_domain(self):
        histogram = Histogram.from_counts(SPEC, [10.0] * 10)
        assert histogram.estimate_range(1, 101) == pytest.approx(100.0)

    def test_full_bucket(self):
        histogram = Histogram.from_counts(SPEC, [10.0] * 10)
        assert histogram.estimate_range(1, 11) == pytest.approx(10.0)

    def test_partial_bucket_interpolates(self):
        histogram = Histogram.from_counts(SPEC, [10.0] * 10)
        assert histogram.estimate_range(1, 6) == pytest.approx(5.0)

    def test_cross_bucket(self):
        histogram = Histogram.from_counts(SPEC, [10.0, 20.0] + [0.0] * 8)
        assert histogram.estimate_range(6, 16) == pytest.approx(5.0 + 10.0)

    def test_empty_and_inverted_ranges(self):
        histogram = Histogram.from_counts(SPEC, [10.0] * 10)
        assert histogram.estimate_range(50, 50) == 0.0
        assert histogram.estimate_range(60, 50) == 0.0

    def test_out_of_domain_clipped(self):
        histogram = Histogram.from_counts(SPEC, [10.0] * 10)
        assert histogram.estimate_range(-100, 1000) == pytest.approx(100.0)

    def test_selectivity_normalized(self):
        histogram = Histogram.from_counts(SPEC, [10.0] * 10)
        assert histogram.selectivity_range(1, 51) == pytest.approx(0.5)

    def test_selectivity_empty_histogram(self):
        histogram = Histogram.from_counts(SPEC, [0.0] * 10)
        assert histogram.selectivity_range(1, 51) == 0.0

    def test_exact_range_agrees_on_uniform_data(self):
        values = np.arange(1, 101)
        histogram = Histogram.exact(SPEC, values)
        assert histogram.estimate_range(21, 41) == pytest.approx(20.0)


class TestEqualityEstimation:
    def test_uniform_within_bucket(self):
        histogram = Histogram.from_counts(SPEC, [50.0] + [0.0] * 9)
        assert histogram.estimate_equal(5) == pytest.approx(5.0)

    def test_outside_domain_is_zero(self):
        histogram = Histogram.from_counts(SPEC, [50.0] * 10)
        assert histogram.estimate_equal(0) == 0.0
        assert histogram.estimate_equal(101) == 0.0


class TestErrorMetrics:
    def test_identical_histograms_zero_error(self):
        histogram = Histogram.from_counts(SPEC, [7.0] * 10)
        assert histogram.mean_cell_error(histogram) == 0.0

    def test_per_bucket_errors(self):
        truth = Histogram.from_counts(SPEC, [10.0] * 10)
        mine = Histogram.from_counts(SPEC, [11.0] * 5 + [9.0] * 5)
        errors = mine.per_bucket_errors(truth)
        assert errors == pytest.approx([0.1] * 10)
        assert mine.mean_cell_error(truth) == pytest.approx(0.1)

    def test_empty_reference_buckets_skipped(self):
        truth = Histogram.from_counts(SPEC, [10.0] * 5 + [0.0] * 5)
        mine = Histogram.from_counts(SPEC, [10.0] * 5 + [99.0] * 5)
        assert mine.mean_cell_error(truth) == 0.0

    def test_mismatched_specs_rejected(self):
        other = BucketSpec.equi_width(1, 100, 5)
        with pytest.raises(HistogramError):
            Histogram.from_counts(SPEC, [1.0] * 10).per_bucket_errors(
                Histogram.from_counts(other, [1.0] * 5)
            )
