"""Integration tests: histograms built over a live DHS deployment."""

import pytest

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.histograms.buckets import BucketSpec
from repro.histograms.builder import DHSHistogramBuilder
from repro.histograms.histogram import Histogram
from repro.overlay.chord import ChordRing
from repro.sim.seeds import rng_for

import numpy as np


@pytest.fixture(scope="module")
def deployment():
    """A small DHS with one relation's histogram recorded."""
    ring = ChordRing.build(64, bits=32, seed=3)
    config = DHSConfig(key_bits=16, num_bitmaps=4, lim=70)
    dhs = DistributedHashSketch(ring, config, seed=1)
    spec = BucketSpec.equi_width(1, 100, 5)
    builder = DHSHistogramBuilder(dhs, spec, "sales")
    rng = rng_for(7, "values")
    values = [rng.randrange(1, 101) for _ in range(1200)]
    node_ids = list(ring.node_ids())
    pairs = [(i, values[i]) for i in range(len(values))]
    # Record from many origins so bit copies spread over the intervals.
    for start in range(0, len(pairs), 40):
        origin = node_ids[(start // 40) % len(node_ids)]
        builder.record_bulk(pairs[start : start + 40], origin=origin)
    return dhs, builder, spec, np.array(values)


class TestRecording:
    def test_metric_naming(self, deployment):
        _, builder, _, _ = deployment
        assert builder.metric_for_bucket(0) == ("sales", "hist", 0)
        assert len(builder.all_metrics()) == 5

    def test_record_single(self, deployment):
        dhs, _, spec, _ = deployment
        builder = DHSHistogramBuilder(dhs, spec, "other")
        cost = builder.record(item=1, value=50)
        assert cost.hops >= 1

    def test_record_rejects_out_of_domain(self, deployment):
        _, builder, _, _ = deployment
        from repro.errors import HistogramError

        with pytest.raises(HistogramError):
            builder.record(item=1, value=0)


class TestReconstruction:
    def test_full_reconstruction_accuracy(self, deployment):
        _, builder, spec, values = deployment
        reconstruction = builder.reconstruct()
        truth = Histogram.exact(spec, values)
        # m=4 is coarse (sigma ~ 50%); just demand the same ballpark.
        assert reconstruction.histogram.total == pytest.approx(truth.total, rel=0.8)
        assert reconstruction.histogram.mean_cell_error(truth) < 1.5

    def test_hops_independent_of_bucket_count(self, deployment):
        """Table 3's headline: reconstructing I buckets costs the hops
        of counting one metric."""
        dhs, builder, _, _ = deployment
        origin = dhs.dht.node_ids()[0]
        full = builder.reconstruct(origin=origin)
        single = dhs.count(builder.metric_for_bucket(0), origin=origin)
        # Same scan structure: within a small factor, not x buckets.
        assert full.cost.hops <= 3 * single.cost.hops + 20

    def test_bytes_grow_with_buckets(self, deployment):
        dhs, builder, _, _ = deployment
        origin = dhs.dht.node_ids()[0]
        full = builder.reconstruct(origin=origin)
        single = dhs.count(builder.metric_for_bucket(0), origin=origin)
        assert full.cost.bytes > single.cost.bytes

    def test_partial_reconstruction(self, deployment):
        _, builder, spec, values = deployment
        partial = builder.reconstruct_buckets([1, 3])
        truth = Histogram.exact(spec, values)
        assert partial.histogram.counts[0] == 0.0
        assert partial.histogram.counts[2] == 0.0
        for index in (1, 3):
            assert partial.histogram.counts[index] == pytest.approx(
                truth.counts[index], rel=1.5
            )

    def test_partial_cheaper_than_full(self, deployment):
        _, builder, _, _ = deployment
        full = builder.reconstruct()
        partial = builder.reconstruct_buckets([2])
        assert partial.cost.bytes < full.cost.bytes
