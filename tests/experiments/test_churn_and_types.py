"""Shape tests for the churn and histogram-type drivers (tiny scale)."""

from repro.experiments.churn import format_churn, run_churn_experiment
from repro.experiments.histogram_types import (
    format_histogram_types,
    run_histogram_types,
)


class TestChurnDriver:
    def test_policies_reported(self):
        rows = run_churn_experiment(
            policies=((4, 2), (4, None)),
            rounds=6,
            n_nodes=32,
            items_per_node=40,
            num_bitmaps=16,
            seed=5,
        )
        labels = [row.label for row in rows]
        assert labels == ["ttl=4, refresh every 2", "ttl=4, refresh never"]
        refreshed, decayed = rows
        assert refreshed.refresh_kb > 0
        assert decayed.refresh_kb == 0
        assert decayed.mean_error_pct >= refreshed.mean_error_pct - 10
        assert "Soft-state" in format_churn(rows)

    def test_truth_drifts_with_churn(self):
        """Sanity: mean error is finite and rounds complete."""
        rows = run_churn_experiment(
            policies=((None, None),),
            rounds=4,
            n_nodes=24,
            items_per_node=30,
            num_bitmaps=16,
            seed=6,
        )
        assert rows[0].mean_error_pct < 500


class TestHistogramTypesDriver:
    def test_all_kinds_reported(self):
        rows = run_histogram_types(
            kinds=("equi_width", "v_optimal"),
            n_nodes=24,
            n_micro=20,
            budget=5,
            n_items=40_000,
            num_bitmaps=16,
            n_queries=40,
            seed=5,
        )
        kinds = {row.kind for row in rows}
        assert kinds == {"equi_width", "v_optimal"}
        for row in rows:
            assert row.mean_range_error_pct >= 0
            assert row.oracle_error_pct >= 0
        assert "footnote 5" in format_histogram_types(rows)


class TestRobustnessDriver:
    def test_replication_flattens_degradation(self):
        from repro.experiments.robustness import (
            format_robustness,
            run_failure_robustness,
        )

        rows = run_failure_robustness(
            failure_fractions=(0.0, 0.3),
            replications=(0, 3),
            n_nodes=64,
            n_items=30_000,
            num_bitmaps=64,
            trials=1,
            draws=2,
            seed=7,
        )
        by = {(row.p_f, row.replication): row for row in rows}
        assert by[(0.3, 3)].error_pct <= by[(0.3, 0)].error_pct + 5
        assert "p_f" in format_robustness(rows)

    def test_fractions_must_ascend(self):
        import pytest

        from repro.experiments.robustness import run_failure_robustness

        with pytest.raises(ValueError):
            run_failure_robustness(failure_fractions=(0.3, 0.1))
