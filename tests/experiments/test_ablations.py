"""Shape tests for the ablation drivers (tiny configurations)."""

from repro.experiments.ablations import (
    format_ablation,
    run_bitshift_ablation,
    run_lim_ablation,
    run_overlay_comparison,
    run_replication_ablation,
)


class TestLimAblation:
    def test_budget_buys_accuracy(self):
        rows = run_lim_ablation(
            lims=(1, 8),
            n_nodes=64,
            n_items=10_000,
            num_bitmaps=64,
            trials=2,
            seed=4,
        )
        by = {row.label: row for row in rows}
        assert by["lim=1"].error_pct >= by["lim=8"].error_pct
        assert "lim=1" in format_ablation("t", "x", rows)


class TestReplicationAblation:
    def test_rows_shape(self):
        rows = run_replication_ablation(
            degrees=(0, 3),
            failure_fraction=0.2,
            n_nodes=64,
            n_items=5_000,
            num_bitmaps=64,
            trials=2,
            seed=4,
        )
        by = {row.label: row for row in rows}
        # Replicas cost extra insert hops and never hurt accuracy much.
        assert by["R=3"].extra > by["R=0"].extra
        assert by["R=3"].error_pct <= by["R=0"].error_pct + 10


class TestBitShiftAblation:
    def test_shift_saves_write_bytes(self):
        rows = run_bitshift_ablation(
            shifts=(0, 3),
            n_nodes=64,
            n_items=20_000,
            num_bitmaps=16,
            trials=2,
            seed=4,
        )
        by = {row.label: row for row in rows}
        assert by["b=3"].extra < by["b=0"].extra


class TestOverlayComparison:
    def test_both_overlays_reported(self):
        rows = run_overlay_comparison(
            n_nodes=64, n_items=20_000, num_bitmaps=64, trials=2, seed=4
        )
        labels = {row.label for row in rows}
        assert labels == {"chord", "kademlia", "pastry"}
        for row in rows:
            assert row.hops > 0
