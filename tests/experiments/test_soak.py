"""Tests for the continuous-churn soak driver (repro.experiments.soak)."""

import pytest

from repro.cli import EXPERIMENTS
from repro.errors import ConfigurationError
from repro.experiments.soak import (
    SOAK_FAULT_CYCLE,
    format_soak,
    run_soak,
    soak_plan,
)

SMOKE = dict(
    ticks=40, fault_every=10, fraction=0.15, duration=3,
    n_nodes=48, items_per_tick=40, num_bitmaps=32,
    estimator="sll", replication=2, count_every=2, seed=3,
)


@pytest.fixture(scope="module")
def rows():
    return run_soak(**SMOKE)


@pytest.fixture(scope="module")
def by(rows):
    return {row.policy: row for row in rows}


class TestPlan:
    def test_no_fault_plan_is_empty(self):
        assert soak_plan(50, None, 0.2, 3).is_empty
        assert soak_plan(50, 0, 0.2, 3).is_empty

    def test_kinds_cycle_and_recovery_fits_inside_run(self):
        plan = soak_plan(60, 12, 0.2, 4)
        assert [e.kind for e in plan.events] == list(SOAK_FAULT_CYCLE)
        for event in plan.events:
            assert event.at + max(event.duration, 1) < 60

    def test_timed_kinds_carry_duration(self):
        plan = soak_plan(60, 12, 0.2, 4)
        for event in plan.events:
            if event.kind in ("amnesia", "partition", "transient"):
                assert event.duration == 4
            else:
                assert event.duration == 0


class TestAcceptance:
    def test_antientropy_ends_converged(self, by):
        assert by["antientropy"].final_divergence == 0

    def test_antientropy_bounds_divergence(self, by):
        assert by["antientropy"].mean_divergence < by["readrepair"].mean_divergence
        assert (
            by["antientropy"].mean_convergence_ticks
            < by["readrepair"].mean_convergence_ticks
        )

    def test_repair_bandwidth_is_charged(self, by):
        # Every reconciliation byte flows through the SizeModel; the
        # read-repair-only policy never pays any.
        assert by["antientropy"].repair_kb > 0
        assert by["antientropy"].repair_writes > 0
        assert by["readrepair"].repair_kb == 0

    def test_antientropy_underreads_less(self, by):
        assert (
            by["antientropy"].mean_underread_pct
            < by["readrepair"].mean_underread_pct
        )


class TestHarness:
    def test_parallel_matches_serial(self):
        kwargs = dict(SMOKE, ticks=16, n_nodes=24)
        assert run_soak(jobs=2, **kwargs) == run_soak(jobs=1, **kwargs)

    def test_no_fault_run_is_byte_identical(self):
        kwargs = dict(SMOKE, ticks=16, n_nodes=24, fault_every=None)
        first = run_soak(jobs=1, **kwargs)
        second = run_soak(jobs=2, **kwargs)
        assert [r.trace_digest for r in first] == [r.trace_digest for r in second]
        for row in first:
            assert row.faults == 0
            assert row.final_divergence == 0

    def test_no_fault_policies_estimate_identically(self):
        kwargs = dict(SMOKE, ticks=16, n_nodes=24, fault_every=None)
        rows = {r.policy: r for r in run_soak(**kwargs)}
        # Reconciliation OR-merges existing values only, so with no
        # faults the two policies' counts cannot differ.
        assert (
            rows["antientropy"].mean_underread_pct
            == rows["readrepair"].mean_underread_pct
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            run_soak(policies=("wishful",), **SMOKE)

    def test_format_renders_every_row(self, rows):
        table = format_soak(rows)
        assert "div mean" in table and "repair kB" in table
        assert table.count("\n") >= len(rows)

    def test_cli_registration(self):
        assert "soak" in EXPERIMENTS
