"""Golden regression for the multi-tenant Zipf workload.

The committed fixture pins the per-tenant operation counts and the
load-balance summary row byte-for-byte, so refactors to the lean node
representation (or the vectorized populate path) cannot silently shift
results.  Regenerate deliberately with::

    PYTHONPATH=src python -c "..."  # see tests/experiments/data/

after verifying the change is an intended behaviour change.
"""

import json
import pathlib
from dataclasses import asdict

from repro.experiments.multitenant import format_multitenant, run_multitenant
from repro.workloads.multitenant import tenant_op_counts

FIXTURE = pathlib.Path(__file__).parent / "data" / "multitenant_golden.json"


class TestMultitenantGolden:
    def test_zipf_op_counts_pinned(self):
        golden = json.loads(FIXTURE.read_text())
        zipf = golden["zipf"]
        ops = tenant_op_counts(
            zipf["n_tenants"],
            zipf["total_ops"],
            theta=zipf["theta"],
            seed=zipf["seed"],
        )
        assert ops.tolist() == zipf["op_counts"]

    def test_summary_rows_pinned_byte_for_byte(self):
        golden = json.loads(FIXTURE.read_text())
        params = golden["params"]
        rows = run_multitenant(
            node_counts=tuple(params["node_counts"]),
            n_tenants=params["n_tenants"],
            total_ops=params["total_ops"],
            theta=params["theta"],
            num_bitmaps=params["num_bitmaps"],
            count_tenants=params["count_tenants"],
            trials=params["trials"],
            seed=params["seed"],
            jobs=1,
        )
        # Every numeric field exactly equal (JSON floats round-trip).
        assert [asdict(row) for row in rows] == golden["rows"]
        # ... and the rendered summary row byte-for-byte.
        assert format_multitenant(rows) == golden["report"]
