"""The no-fault byte-identity contract.

The fault layer, retry policies and self-healing paths were wired
through the overlay and the whole core (lookup, insert, count): the
hard guarantee of that refactor is that with an *empty* ``FaultPlan``
and the *default* ``RetryPolicy`` every number the library produces is
bit-identical to the code before the machinery existed.

Two gates enforce it:

* golden pins — core counting cells and two experiment drivers were
  recorded (``data/no_fault_golden.json``) *before* the fault-injection
  code landed; any drift in estimates, hops, bytes or probe walks under
  default settings fails here.
* a property test — wrapping any deployment in a no-plan
  :class:`~repro.overlay.faults.FaultInjector` changes nothing,
  for arbitrary seeds (contract style of ``tests/sim/test_parallel.py``).
"""

import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.core.policy import DEFAULT_POLICY
from repro.experiments.common import populate_metric
from repro.experiments.accuracy import run_accuracy_sweep
from repro.experiments.robustness import run_failure_robustness
from repro.overlay.chord import ChordRing
from repro.overlay.faults import FaultInjector, FaultPlan
from repro.sim.seeds import rng_for

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "data" / "no_fault_golden.json").read_text()
)


def _core_cell(estimator, replication, wrap_in_injector=False):
    """The recorded deployment: build, populate, count, summarize."""
    ring = ChordRing.build(96, bits=32, seed=13)
    dht = ring if not wrap_in_injector else FaultInjector(ring, FaultPlan.empty())
    dhs = DistributedHashSketch(
        dht,
        DHSConfig(
            key_bits=20, num_bitmaps=32,
            estimator=estimator, replication=replication,
        ),
        seed=5,
        policy=DEFAULT_POLICY,
    )
    ins = populate_metric(dhs, "docs", np.arange(30_000), seed=3)
    origin = rng_for(7, "o").choice(ring.node_ids())
    res = dhs.count("docs", origin=origin)
    summary = {
        "est": res.estimates["docs"],
        "hops": res.cost.hops,
        "bytes": res.cost.bytes,
        "msgs": res.cost.messages,
        "probes": res.probes,
        "uniq": len(res.probed_ids),
        "ins_hops": ins.hops,
        "ins_bytes": ins.bytes,
        "intervals": res.intervals_scanned,
    }
    return summary, res, ins


class TestGoldenCoreCells:
    """Counting cells recorded before the fault machinery landed."""

    @pytest.mark.parametrize("cell", sorted(GOLDEN["core"]))
    def test_bare_ring_matches_golden(self, cell):
        estimator, replication = cell.split("/R")
        summary, _, _ = _core_cell(estimator, int(replication))
        assert summary == GOLDEN["core"][cell]

    @pytest.mark.parametrize("cell", sorted(GOLDEN["core"]))
    def test_empty_injector_matches_golden(self, cell):
        # The same cells THROUGH a no-plan FaultInjector: the wrapper
        # must be invisible down to the last byte and hop.
        estimator, replication = cell.split("/R")
        summary, res, ins = _core_cell(
            estimator, int(replication), wrap_in_injector=True
        )
        assert summary == GOLDEN["core"][cell]
        # And the new degraded-mode fields stay quiet on clean runs.
        assert not res.degraded
        assert res.exhausted_intervals == 0
        assert res.dropped_messages == 0
        assert res.confidence == {"docs": 1.0}
        assert res.cost.timeouts == 0 and res.cost.retries == 0
        assert ins.drops == 0 and ins.repair_writes == 0


class TestGoldenDrivers:
    """Whole experiment drivers pinned against their recorded tables."""

    def test_robustness_driver_unchanged(self):
        rows = run_failure_robustness(
            failure_fractions=(0.0, 0.2), replications=(0, 2),
            n_nodes=64, n_items=20_000, num_bitmaps=64, estimator="sll",
            trials=2, draws=2, seed=9,
        )
        got = [[r.p_f, r.replication, r.error_pct, r.hops] for r in rows]
        assert got == GOLDEN["drivers"]["robustness"]

    def test_accuracy_driver_unchanged(self):
        rows = run_accuracy_sweep(
            seed=9, jobs=1, ms=(16, 32), n_nodes=32, scale=2e-4,
            trials=2, hash_seeds=(0, 1),
        )
        fields = GOLDEN["drivers"]["accuracy_fields"]
        got = [[getattr(r, f) for f in fields] for r in rows]
        assert got == GOLDEN["drivers"]["accuracy"]


def _count_summary(dht, seed, n_items):
    dhs = DistributedHashSketch(
        dht, DHSConfig(key_bits=12, num_bitmaps=16), seed=seed
    )
    populate_metric(dhs, "docs", np.arange(n_items), seed=seed)
    origin = rng_for(seed, "origin").choice(dht.node_ids())
    res = dhs.count("docs", origin=origin)
    return (
        res.estimates["docs"], res.cost.hops, res.cost.bytes,
        res.cost.messages, res.probes, sorted(res.probed_ids),
    )


class TestEmptyPlanProperty:
    """For arbitrary seeds, the no-plan injector is a perfect no-op."""

    @given(seed=st.integers(0, 2**20))
    @settings(max_examples=5, deadline=None)
    def test_wrapped_equals_bare(self, seed):
        bare = _count_summary(ChordRing.build(24, seed=seed), seed, 2_000)
        ring = ChordRing.build(24, seed=seed)
        wrapped = _count_summary(
            FaultInjector(ring, FaultPlan.empty(), seed=seed), seed, 2_000
        )
        assert wrapped == bare
