"""Smoke/shape tests for the experiment drivers (tiny configurations).

The benchmarks run the paper-scale versions; these tests only assert
that each driver is well-formed, deterministic, and directionally sane
at miniature scale so the suite stays fast.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.accuracy import format_accuracy, run_accuracy_sweep
from repro.experiments.baselines import format_baselines, run_baseline_comparison
from repro.experiments.common import CountSample, env_scale
from repro.experiments.histogram_accuracy import (
    format_histogram_accuracy,
    run_histogram_accuracy,
)
from repro.experiments.insertion import run_insertion_experiment
from repro.experiments.multidim import format_multidim, run_multidim
from repro.experiments.query_opt import run_query_opt
from repro.experiments.report import format_kv, format_table
from repro.experiments.scalability import format_scalability, run_scalability
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import format_table3, run_table3


class TestReport:
    def test_format_table(self):
        text = format_table("T", ["a", "bb"], [[1, 2.5], ["x", 10_000.0]])
        assert "T" in text
        assert "bb" in text
        assert "10,000" in text

    def test_format_kv(self):
        text = format_kv("K", [("key", 1), ("longer key", 2.0)])
        assert "longer key" in text

    def test_format_empty_rows(self):
        assert "hdr" in format_table("t", ["hdr"], [])


class TestEnvScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("DHS_SCALE", raising=False)
        assert env_scale(0.5) == 0.5

    def test_override(self, monkeypatch):
        monkeypatch.setenv("DHS_SCALE", "0.25")
        assert env_scale(0.5) == 0.25


class TestCountSample:
    def test_aggregates(self):
        sample = CountSample(
            estimates=[110.0, 90.0],
            truths=[100.0, 100.0],
            hops=[10, 20],
            nodes_visited=[3, 5],
            bytes=[1024.0, 2048.0],
            lookups=[4, 6],
        )
        assert sample.mean_hops() == 15
        assert sample.mean_nodes() == 4
        assert sample.mean_bytes() == 1536.0
        assert sample.mean_abs_rel_error() == pytest.approx(0.1)
        assert sample.mean_rel_bias() == pytest.approx(0.0)


@pytest.fixture(scope="module")
def table2_rows():
    return run_table2(n_nodes=32, ms=(16, 64), scale=5e-4, trials=1, seed=3)


class TestTable2:
    def test_row_count(self, table2_rows):
        assert len(table2_rows) == 4  # 2 m-values x 2 estimators

    def test_rows_well_formed(self, table2_rows):
        for row in table2_rows:
            assert row.estimator in ("sll", "pcsa")
            assert row.hops > 0
            assert row.bw_kbytes > 0
            assert row.error_pct >= 0

    def test_bandwidth_grows_with_m(self, table2_rows):
        by = {(r.m, r.estimator): r for r in table2_rows}
        assert by[(64, "sll")].bw_kbytes > by[(16, "sll")].bw_kbytes

    def test_format(self, table2_rows):
        text = format_table2(table2_rows, 5e-4)
        assert "Table 2" in text
        assert "64" in text

    def test_deterministic(self, table2_rows):
        again = run_table2(n_nodes=32, ms=(16, 64), scale=5e-4, trials=1, seed=3)
        assert [(r.m, r.estimator, r.hops) for r in again] == [
            (r.m, r.estimator, r.hops) for r in table2_rows
        ]


class TestTable3:
    def test_shape_and_format(self):
        rows = run_table3(
            n_nodes=32, ms=(16,), n_buckets=5, scale=2e-4, trials=1, seed=3
        )
        assert len(rows) == 2
        text = format_table3(rows, 2e-4)
        assert "Table 3" in text
        for row in rows:
            assert row.hops > 0
            assert row.bw_kbytes > 0


class TestScalability:
    def test_hops_grow_slowly(self):
        rows = run_scalability(
            node_counts=(16, 256), num_bitmaps=16, scale=2e-4, trials=2, seed=3
        )
        by = {(r.n_nodes, r.estimator): r for r in rows}
        assert by[(256, "sll")].hops > by[(16, "sll")].hops
        # 16x more nodes must NOT mean 16x more hops (logarithmic cost).
        assert by[(256, "sll")].hops < 6 * by[(16, "sll")].hops
        assert "Scalability" in format_scalability(rows)

    def test_rows_carry_error_and_load_balance(self):
        rows = run_scalability(
            node_counts=(32,), num_bitmaps=16, scale=2e-4, trials=2, seed=3
        )
        for row in rows:
            assert row.error >= 0.0
            assert row.load_max_mean >= 1.0
            assert 0.0 <= row.load_gini < 1.0

    def test_log_fit_anchored_to_small_cells(self):
        import math

        from repro.experiments.scalability import (
            ScalabilityRow,
            fit_log2_coefficient,
        )

        rows = [
            ScalabilityRow(1024, "sll", hops=50.0, nodes_visited=1, lookups=1),
            ScalabilityRow(100_000, "sll", hops=999.0, nodes_visited=1, lookups=1),
        ]
        # Only the N<=1e4 cell shapes the fit: c = hops / log2(N).
        assert fit_log2_coefficient(rows) == pytest.approx(50.0 / 10.0)
        assert fit_log2_coefficient([rows[1]]) == 0.0
        predicted = fit_log2_coefficient(rows) * math.log2(100_000)
        assert predicted < 999.0

    def test_sweep_node_counts_ladder(self):
        from repro.experiments.scalability import sweep_node_counts

        assert sweep_node_counts(1_000_000) == (1000, 10_000, 100_000, 1_000_000)
        assert sweep_node_counts(50_000) == (1000, 10_000, 50_000)
        assert sweep_node_counts(500) == (500,)
        with pytest.raises(ConfigurationError):
            sweep_node_counts(0)


class TestMultitenant:
    def test_small_run_balances_and_counts(self):
        from repro.experiments.multitenant import format_multitenant, run_multitenant

        rows = run_multitenant(
            node_counts=(32,),
            n_tenants=64,
            total_ops=1024,
            num_bitmaps=16,
            count_tenants=2,
            trials=2,
            seed=4,
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.active_tenants <= row.n_tenants
        assert row.storage_max_mean >= 1.0
        assert 0.0 <= row.storage_gini < 1.0
        assert row.hops > 0 and row.error >= 0.0
        assert row.membership_bytes_per_node == 8.0
        assert "Multi-tenant" in format_multitenant(rows)

    def test_parallel_identity(self):
        from repro.experiments.multitenant import run_multitenant

        kwargs = dict(
            node_counts=(16, 64),
            n_tenants=48,
            total_ops=512,
            num_bitmaps=16,
            count_tenants=2,
            trials=1,
            seed=9,
        )
        assert run_multitenant(jobs=1, **kwargs) == run_multitenant(
            jobs=3, **kwargs
        )


class TestAccuracy:
    def test_sweep_shape(self):
        rows = run_accuracy_sweep(
            ms=(16, 64), n_nodes=32, scale=1e-3, trials=1, hash_seeds=(0,), seed=3
        )
        assert len(rows) == 4
        assert "Accuracy" in format_accuracy(rows)


class TestHistogramAccuracy:
    def test_small_run(self):
        rows = run_histogram_accuracy(
            ms=(16,), n_nodes=16, n_buckets=4, n_items=30_000, trials=1, seed=3
        )
        assert len(rows) == 2
        for row in rows:
            assert row.cell_error_pct >= 0
            assert row.sketch_sigma_pct > 0
        assert "Histogram" in format_histogram_accuracy(rows)


class TestInsertion:
    def test_report(self):
        report = run_insertion_experiment(
            n_nodes=64, num_bitmaps=16, n_buckets=5, scale=2e-4, probe_inserts=100, seed=3
        )
        assert 1 < report.mean_hops_per_insert < 12
        assert report.mean_bytes_per_insert == pytest.approx(
            8 * report.mean_hops_per_insert
        )
        assert report.mean_storage_bytes_per_node <= report.theoretical_worst_case_bytes
        assert "Insertion" in report.format()


class TestQueryOpt:
    def test_report_shape(self):
        report = run_query_opt(
            n_nodes=32, num_bitmaps=32, n_buckets=5, scale=2e-4, seed=3
        )
        assert report.oracle_shipped_mb <= report.naive_shipped_mb + 1e-9
        assert report.chosen_shipped_mb > 0
        assert report.histogram_cost_mb > 0
        assert "Query optimization" in report.format()


class TestBaselinesComparison:
    def test_all_methods_present(self):
        rows = run_baseline_comparison(
            n_nodes=32, n_distinct=2000, total_items=5000, num_bitmaps=32, seed=3
        )
        methods = {row.method for row in rows}
        assert methods == {
            "DHS (sLL)",
            "single-node counter",
            "partitioned counter (P=8)",
            "push-sum gossip",
            "sketch gossip",
            "convergecast (sketch)",
            "node sampling",
        }
        assert "DHS" in format_baselines(rows)

    def test_duplicate_sensitivity_flags(self):
        rows = run_baseline_comparison(
            n_nodes=32, n_distinct=2000, total_items=5000, num_bitmaps=32, seed=3
        )
        flags = {row.method: row.duplicate_insensitive for row in rows}
        assert flags["DHS (sLL)"]
        assert flags["sketch gossip"]
        assert not flags["push-sum gossip"]
        assert not flags["node sampling"]


class TestMultiDim:
    def test_bytes_grow_hops_do_not(self):
        rows = run_multidim(
            metric_counts=(1, 8), n_nodes=32, items_per_metric=2000,
            num_bitmaps=16, trials=2, seed=3,
        )
        one, eight = rows[0], rows[1]
        assert eight.bytes_kb > one.bytes_kb
        assert eight.hops < 8 * max(one.hops, 1)
        assert "Multi-dimension" in format_multidim(rows)
