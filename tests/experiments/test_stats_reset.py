"""Regression tests: per-node access tallies cannot leak between cells.

Every experiment cell that reports load (faultmatrix policy columns, the
Fig. 7 load table) must see tallies from its own operations only.  Two
mechanisms guarantee that and both are pinned here:

* cells rebuild their deployment, so a rebuilt (seed-identical) ring
  starts from an empty :class:`~repro.overlay.stats.LoadTracker` and two
  reruns of the same cell produce identical per-node counts;
* within a cell, phases are separated by an explicit ``reset()`` —
  either directly on the tracker (``run_traced_count`` does this between
  populate and count) or through ``MetricsRegistry.attach``'s cascade.
"""

import numpy as np
import pytest

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.experiments.tracing import TraceScenario, run_traced_count
from repro.obs.metrics import MetricsRegistry
from repro.overlay.chord import ChordRing
from repro.sim.seeds import rng_for

N_NODES = 32
SEED = 11


def build_cell():
    """One experiment cell's deployment, the way every experiment builds it."""
    ring = ChordRing.build(N_NODES, seed=SEED)
    dhs = DistributedHashSketch(
        ring, DHSConfig(num_bitmaps=32, key_bits=16), seed=SEED
    )
    return ring, dhs


def run_cell(dhs):
    """Populate + count: the two phases whose tallies must not mix."""
    dhs.insert_array("docs", np.arange(4000, dtype=np.int64))
    rng = rng_for(SEED, "origins")
    for _ in range(3):
        dhs.count("docs", origin=dhs.dht.random_live_node(rng))


class TestCellIsolation:
    def test_fresh_ring_starts_clean(self):
        ring, _ = build_cell()
        assert ring.load.total == 0
        assert ring.load.counts() == {}

    def test_rebuilt_cell_reproduces_tallies_exactly(self):
        """Two reruns of one cell agree per node — no state carries over."""
        first_ring, first_dhs = build_cell()
        run_cell(first_dhs)
        second_ring, second_dhs = build_cell()
        run_cell(second_dhs)
        assert first_ring.load.total > 0
        assert second_ring.load.counts() == first_ring.load.counts()

    def test_reset_between_phases_isolates_query_load(self):
        """reset() after populate leaves exactly the count-phase tallies."""
        ring, dhs = build_cell()
        dhs.insert_array("docs", np.arange(4000, dtype=np.int64))
        insert_load = ring.load.total
        assert insert_load > 0
        ring.load.reset()
        assert ring.load.total == 0
        rng = rng_for(SEED, "origins")
        for _ in range(3):
            dhs.count("docs", origin=dhs.dht.random_live_node(rng))
        query_counts = ring.load.counts()
        assert ring.load.total > 0

        # The same count phase on a rebuilt cell whose tracker was never
        # polluted by inserts yields the identical per-node map.
        clean_ring, clean_dhs = build_cell()
        clean_dhs.insert_array("docs", np.arange(4000, dtype=np.int64))
        clean_ring.load.reset()
        clean_rng = rng_for(SEED, "origins")
        for _ in range(3):
            clean_dhs.count("docs", origin=clean_dhs.dht.random_live_node(clean_rng))
        assert clean_ring.load.counts() == query_counts

    def test_registry_reset_cascades_to_ring_tracker(self):
        """A registry-attached tracker is cleaned by one registry.reset()."""
        ring, dhs = build_cell()
        registry = MetricsRegistry()
        registry.attach(ring.load)
        run_cell(dhs)
        registry.inc("dhs.count.ops", 3)
        assert ring.load.total > 0
        registry.reset()
        assert ring.load.total == 0
        assert ring.load.counts() == {}
        assert registry.counter("dhs.count.ops") == 0

    def test_second_attached_cell_starts_from_zero(self):
        """Registry-driven cell transitions: after reset() the tracker is
        empty, so the second cell's tallies are its own operations only."""
        ring, dhs = build_cell()
        registry = MetricsRegistry()
        registry.attach(ring.load)
        run_cell(dhs)
        first_total = ring.load.total
        assert first_total > 0
        registry.reset()
        assert ring.load.counts() == {}
        run_cell(dhs)
        # Everything tallied now was recorded after the reset.
        assert ring.load.total > 0
        assert ring.load.total == sum(ring.load.counts().values())


class TestTracedRunLoadTable:
    def test_load_rows_exclude_population(self):
        """run_traced_count's Fig. 7 table shows query load only."""
        run = run_traced_count(TraceScenario(n_nodes=32, n_items=500, trials=2))
        table_total = sum(row.accesses for row in run.load_rows)
        assert table_total > 0
        # The populate phase stores 500 items across 32 nodes: if its
        # tallies leaked, the table total would exceed the trace's whole
        # message budget.  Bound it by the messages the counts recorded.
        messages = sum(
            span.attrs.get("messages", 0)
            for span in run.spans
            if span.name == "dhs.count"
        )
        hops = sum(
            span.attrs.get("hops", 0)
            for span in run.spans
            if span.name == "dhs.count"
        )
        assert table_total <= messages + hops + run.scenario.trials * 64
