"""Tests for the fault-matrix driver (repro.experiments.faultmatrix)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.faultmatrix import (
    _plan_for,
    format_faultmatrix,
    run_faultmatrix,
)

SMOKE = dict(
    n_nodes=32, n_items=4_000, num_bitmaps=32,
    estimator="sll", trials=2, draws=2, seed=3,
)


@pytest.fixture(scope="module")
def rows():
    return run_faultmatrix(
        fault_kinds=("drop", "lazy_crash", "amnesia"),
        intensities=(0.1, 0.3),
        policies=("none", "retry+repair"),
        replications=(0, 2),
        **SMOKE,
    )


@pytest.fixture(scope="module")
def by(rows):
    return {(r.fault, r.intensity, r.policy, r.replication): r for r in rows}


class TestAcceptance:
    def test_error_grows_with_drop_rate_without_recovery(self, by):
        # (a) At R=0 with no retries, more loss means more error.
        assert by[("drop", 0.3, "none", 0)].error_pct > by[("drop", 0.1, "none", 0)].error_pct

    def test_retry_and_repair_recover_accuracy(self, by):
        # (b) The recovery stack claws heavy-drop accuracy back towards
        # the clean baseline, paying hops instead of accuracy.
        degraded = by[("drop", 0.3, "none", 2)]
        recovered = by[("drop", 0.3, "retry+repair", 2)]
        assert recovered.error_pct < degraded.error_pct / 2
        assert recovered.hops > degraded.hops

    def test_replication_and_repair_absorb_amnesia(self, by):
        # (b) Rejoined-empty nodes: unreplicated data is simply gone,
        # replicated data survives and the repair paths rewrite it.
        lost = by[("amnesia", 0.3, "none", 0)]
        healed = by[("amnesia", 0.3, "retry+repair", 2)]
        assert healed.error_pct < lost.error_pct / 2
        assert healed.repair_writes > 0

    def test_lossy_runs_flag_themselves(self, by):
        # (c) Every drop-afflicted count is marked degraded and its
        # eq. 5 confidence falls below the clean-run 1.0.
        worst = by[("drop", 0.3, "none", 0)]
        assert worst.degraded_pct == 100.0
        assert worst.confidence < 0.5

    def test_clean_cells_stay_confident(self, by):
        # Faults that never exhaust a probe budget leave confidence at 1.
        assert by[("amnesia", 0.1, "none", 2)].confidence == 1.0


class TestAntiEntropyGate:
    """The tentpole's acceptance gate, at the bench configuration."""

    @pytest.fixture(scope="class")
    def gate(self):
        return {
            (r.fault, r.intensity, r.policy): r
            for r in run_faultmatrix(
                fault_kinds=("amnesia", "partition"),
                intensities=(0.3, 0.4),
                policies=("retry+readrepair", "retry+antientropy"),
                replications=(2,),
                n_nodes=96, n_items=6_000, num_bitmaps=32,
                estimator="sll", trials=3, draws=3, seed=3,
            )
        }

    @pytest.mark.parametrize("fault", ["amnesia", "partition"])
    @pytest.mark.parametrize("intensity", [0.3, 0.4])
    def test_antientropy_strictly_lowers_underread(self, gate, fault, intensity):
        readrepair = gate[(fault, intensity, "retry+readrepair")]
        antientropy = gate[(fault, intensity, "retry+antientropy")]
        assert antientropy.underread_pct < readrepair.underread_pct
        assert antientropy.repair_writes > readrepair.repair_writes

    def test_underread_never_exceeds_error(self, gate):
        # Under-read is the fault-attributable slice of the error: it
        # can't exceed the total error against truth by more than the
        # sketch's own (bounded) estimation bias.
        for row in gate.values():
            assert row.underread_pct <= row.error_pct + 15.0


class TestHarness:
    def test_parallel_matches_serial(self):
        kwargs = dict(
            fault_kinds=("drop",), intensities=(0.2,),
            policies=("none", "retry"), replications=(0,),
            n_nodes=16, n_items=1_000, num_bitmaps=16,
            trials=1, draws=2, seed=5,
        )
        assert run_faultmatrix(jobs=2, **kwargs) == run_faultmatrix(jobs=1, **kwargs)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            run_faultmatrix(policies=("wishful",), **SMOKE)

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            _plan_for("meteor", 0.5)

    def test_zero_intensity_is_empty_plan(self):
        assert _plan_for("drop", 0.0).is_empty
        assert _plan_for("amnesia", 0.0).is_empty

    def test_format_renders_every_row(self, rows):
        table = format_faultmatrix(rows)
        assert "fault" in table and "conf" in table
        assert table.count("\n") >= len(rows)
