"""Tests for cost accounting, replication, and failure injection."""

import pytest

from repro.errors import ConfigurationError
from repro.overlay.chord import ChordRing
from repro.overlay.failures import fail_fraction, fail_nodes
from repro.overlay.messages import DEFAULT_SIZE_MODEL, SizeModel
from repro.overlay.replication import replica_chain, replicate_to_successors
from repro.overlay.stats import LoadTracker, OpCost


class TestOpCost:
    def test_add_accumulates(self):
        a = OpCost(hops=2, bytes=16.0, messages=2, nodes_visited=[1, 2], lookups=1)
        b = OpCost(hops=3, bytes=24.0, messages=3, nodes_visited=[2, 3], lookups=1)
        a.add(b)
        assert a.hops == 5
        assert a.bytes == 40.0
        assert a.messages == 5
        assert a.lookups == 2
        assert a.nodes_visited == [1, 2, 2, 3]

    def test_unique_nodes(self):
        cost = OpCost(nodes_visited=[1, 2, 2, 3, 3, 3])
        assert cost.unique_nodes == 3

    def test_total(self):
        costs = [OpCost(hops=1), OpCost(hops=2), OpCost(hops=3)]
        assert OpCost.total(costs).hops == 6

    def test_iadd(self):
        cost = OpCost()
        cost += OpCost(hops=4)
        assert cost.hops == 4


class TestLoadTracker:
    def test_record_and_count(self):
        tracker = LoadTracker()
        tracker.record(1)
        tracker.record(1, amount=4)
        assert tracker.count(1) == 5
        assert tracker.count(99) == 0

    def test_imbalance_perfectly_even(self):
        tracker = LoadTracker()
        for node in range(10):
            tracker.record(node, amount=7)
        assert tracker.imbalance(range(10)) == pytest.approx(1.0)

    def test_imbalance_hotspot(self):
        tracker = LoadTracker()
        tracker.record(0, amount=1000)
        assert tracker.imbalance(range(10)) == pytest.approx(10.0)

    def test_imbalance_empty(self):
        assert LoadTracker().imbalance(range(5)) == 0.0
        assert LoadTracker().imbalance([]) == 0.0

    def test_cv_uniform_is_zero(self):
        tracker = LoadTracker()
        for node in range(8):
            tracker.record(node, amount=3)
        assert tracker.coefficient_of_variation(range(8)) == pytest.approx(0.0)

    def test_cv_increases_with_skew(self):
        even, skewed = LoadTracker(), LoadTracker()
        for node in range(8):
            even.record(node, amount=10)
            skewed.record(node, amount=1)
        skewed.record(0, amount=100)
        assert skewed.coefficient_of_variation(range(8)) > even.coefficient_of_variation(range(8))

    def test_reset(self):
        tracker = LoadTracker()
        tracker.record(1)
        tracker.reset()
        assert tracker.total == 0


class TestSizeModel:
    def test_insert_bytes(self):
        assert DEFAULT_SIZE_MODEL.insert_bytes(hops=3) == 24.0
        assert DEFAULT_SIZE_MODEL.insert_bytes(hops=3, tuples=2) == 48.0

    def test_probe_bytes(self):
        model = SizeModel(tuple_bytes=8, probe_request_bytes=8, key_bytes=8)
        assert model.probe_bytes(request_hops=5, tuples_returned=3) == 5 * 8 + 24

    def test_probe_bytes_scales_with_metrics(self):
        model = SizeModel()
        single = model.probe_bytes(request_hops=5, tuples_returned=0, metrics=1)
        many = model.probe_bytes(request_hops=5, tuples_returned=0, metrics=100)
        assert many > single


class TestReplication:
    def test_chain_members_are_successors(self):
        ring = ChordRing.from_ids([10, 50, 100, 200], bits=8)
        assert replica_chain(ring, 10, 2) == [50, 100]

    def test_chain_wraps(self):
        ring = ChordRing.from_ids([10, 50, 200], bits=8)
        assert replica_chain(ring, 200, 2) == [10, 50]

    def test_chain_skips_lazily_failed_successor(self):
        # Docstring contract: replicas land on *live* nodes only.  A
        # lazily-failed first successor still holds its ring position,
        # so the walk must step over it to the next live node.
        ring = ChordRing.from_ids([10, 50, 100, 200], bits=8)
        ring.mark_failed(50)
        assert replica_chain(ring, 10, 2) == [100, 200]

    def test_chain_terminates_when_origin_evicted(self):
        ring = ChordRing.from_ids([10, 50, 100], bits=8)
        ring.fail_node(10)
        # The walk can never revisit the evicted origin; it must stop
        # after one lap instead of looping.
        assert replica_chain(ring, 10, 5) == [50, 100]

    def test_replicate_skips_dead_first_successor(self):
        ring = ChordRing.from_ids([10, 50, 100, 200], bits=8)
        ring.mark_failed(50)
        cost = replicate_to_successors(
            ring, 10, lambda n: n.store.update({"bit": 1}), degree=2
        )
        assert ring.node(100).store["bit"] == 1
        assert ring.node(200).store["bit"] == 1
        assert "bit" not in ring.node(50).store
        assert cost is not None and cost.hops == 2

    def test_chain_stops_at_full_circle(self):
        ring = ChordRing.from_ids([10, 50], bits=8)
        assert replica_chain(ring, 10, 5) == [50]

    def test_replicate_writes_all_replicas(self):
        ring = ChordRing.from_ids([10, 50, 100, 200], bits=8)
        cost = replicate_to_successors(ring, 10, lambda n: n.store.update({"bit": 1}), degree=2)
        assert ring.node(50).store["bit"] == 1
        assert ring.node(100).store["bit"] == 1
        assert "bit" not in ring.node(200).store
        assert cost.hops == 2
        assert cost.bytes == 16

    def test_zero_degree_is_noop(self):
        ring = ChordRing.from_ids([10, 50], bits=8)
        assert replicate_to_successors(ring, 10, lambda n: None, degree=0) is None


class TestFailures:
    def test_fail_fraction_count(self):
        ring = ChordRing.build(100, bits=32, seed=3)
        victims = fail_fraction(ring, 0.3, seed=1)
        assert len(victims) == 30
        assert ring.size == 70

    def test_fail_fraction_leaves_survivor(self):
        ring = ChordRing.build(10, bits=32, seed=3)
        fail_fraction(ring, 0.99, seed=1)
        assert ring.size >= 1

    def test_fail_fraction_validates(self):
        ring = ChordRing.build(10, bits=32, seed=3)
        with pytest.raises(ConfigurationError):
            fail_fraction(ring, 1.0)

    def test_fail_nodes_explicit(self):
        ring = ChordRing.from_ids([10, 50, 200], bits=8)
        fail_nodes(ring, [50])
        assert not ring.has_node(50)
        assert ring.size == 2

    def test_deterministic_victims(self):
        a = ChordRing.build(50, bits=32, seed=3)
        b = ChordRing.build(50, bits=32, seed=3)
        assert fail_fraction(a, 0.2, seed=9) == fail_fraction(b, 0.2, seed=9)
