"""Tests for the Chord ring simulator."""

import math
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, EmptyOverlayError, NodeNotFoundError
from repro.overlay.chord import ChordRing
from repro.sim.seeds import rng_for


@pytest.fixture(scope="module")
def ring():
    return ChordRing.build(256, bits=32, seed=11)


class TestConstruction:
    def test_build_has_requested_size(self, ring):
        assert ring.size == 256

    def test_ids_sorted_and_unique(self, ring):
        ids = list(ring.node_ids())
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_build_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            ChordRing.build(0)
        with pytest.raises(ConfigurationError):
            ChordRing.build(10, bits=3)

    def test_from_ids(self):
        ring = ChordRing.from_ids([5, 100, 200], bits=8)
        assert list(ring.node_ids()) == [5, 100, 200]

    def test_from_ids_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ChordRing.from_ids([], bits=8)

    def test_duplicate_id_rejected(self):
        ring = ChordRing.from_ids([5], bits=8)
        with pytest.raises(ValueError):
            ring.add_node(5)

    def test_deterministic_given_seed(self):
        a = ChordRing.build(64, bits=32, seed=3)
        b = ChordRing.build(64, bits=32, seed=3)
        assert list(a.node_ids()) == list(b.node_ids())


class TestOwnership:
    def test_owner_is_successor(self):
        ring = ChordRing.from_ids([10, 50, 200], bits=8)
        assert ring.owner_of(10) == 10
        assert ring.owner_of(11) == 50
        assert ring.owner_of(50) == 50
        assert ring.owner_of(201) == 10  # wraps
        assert ring.owner_of(0) == 10

    def test_every_key_has_exactly_one_owner(self):
        ring = ChordRing.from_ids([10, 50, 200], bits=8)
        owners = {ring.owner_of(k) for k in range(256)}
        assert owners == {10, 50, 200}

    def test_ownership_partition_sizes(self):
        ring = ChordRing.from_ids([10, 50, 200], bits=8)
        counts = {10: 0, 50: 0, 200: 0}
        for key in range(256):
            counts[ring.owner_of(key)] += 1
        # node n owns (pred(n), n]
        assert counts[50] == 40
        assert counts[200] == 150
        assert counts[10] == 66

    def test_empty_ring_raises(self):
        ring = ChordRing.from_ids([1], bits=8)
        ring.remove_node(1, graceful=False)
        with pytest.raises(EmptyOverlayError):
            ring.owner_of(5)


class TestNeighbours:
    def test_successor_predecessor_cycle(self, ring):
        ids = list(ring.node_ids())
        for i, node_id in enumerate(ids[:20]):
            assert ring.successor_id(node_id) == ids[(i + 1) % len(ids)]
            assert ring.predecessor_id(node_id) == ids[i - 1]

    def test_single_node_is_own_neighbour(self):
        ring = ChordRing.from_ids([42], bits=8)
        assert ring.successor_id(42) == 42
        assert ring.predecessor_id(42) == 42


class TestRouting:
    def test_lookup_reaches_owner(self, ring):
        rng = rng_for(5, "routing")
        for _ in range(500):
            key = rng.randrange(2**32)
            origin = ring.random_live_node(rng)
            result = ring.lookup(key, origin=origin)
            assert result.node_id == ring.owner_of(key)

    def test_lookup_from_owner_is_free(self, ring):
        key = 12345
        owner = ring.owner_of(key)
        result = ring.lookup(key, origin=owner)
        assert result.cost.hops == 0

    def test_hop_count_logarithmic(self):
        """Mean hops ~ 0.5*log2(N) + 1; generously bounded."""
        for n in (64, 512):
            ring = ChordRing.build(n, bits=64, seed=2)
            rng = rng_for(9, "hops", n)
            hops = []
            for _ in range(400):
                key = rng.randrange(2**64)
                origin = ring.random_live_node(rng)
                hops.append(ring.lookup(key, origin=origin).cost.hops)
            mean = statistics.mean(hops)
            assert 0.3 * math.log2(n) < mean < 1.2 * math.log2(n) + 1
            assert max(hops) <= 2 * math.log2(n) + 4

    def test_hops_grow_with_network_size(self):
        def mean_hops(n):
            ring = ChordRing.build(n, bits=64, seed=4)
            rng = rng_for(10, "growth", n)
            total = 0
            for _ in range(300):
                total += ring.lookup(
                    rng.randrange(2**64), origin=ring.random_live_node(rng)
                ).cost.hops
            return total / 300

        assert mean_hops(64) < mean_hops(1024)

    def test_path_nodes_are_live(self):
        ring = ChordRing.build(256, bits=32, seed=11, trace=True)
        rng = rng_for(6, "path")
        result = ring.lookup(rng.randrange(2**32), origin=ring.random_live_node(rng))
        assert result.cost.nodes_visited  # trace=True records the path
        for node_id in result.cost.nodes_visited:
            assert ring.has_node(node_id)

    def test_untraced_lookup_keeps_counters_only(self, ring):
        rng = rng_for(6, "path-untraced")
        result = ring.lookup(rng.randrange(2**32), origin=ring.random_live_node(rng))
        assert result.cost.nodes_visited == []
        assert result.cost.hops > 0

    def test_two_node_ring(self):
        ring = ChordRing.from_ids([10, 200], bits=8)
        assert ring.lookup(100, origin=10).node_id == 200
        assert ring.lookup(100, origin=200).node_id == 200

    def test_finger_definition(self):
        ring = ChordRing.from_ids([0, 64, 128, 192], bits=8)
        assert ring.finger(0, 5) == 64  # successor(0 + 32) = 64
        assert ring.finger(0, 6) == 64  # successor(64) = 64
        assert ring.finger(0, 7) == 128
        assert ring.finger(192, 6) == 0  # wraps: successor(256 mod 256)


class TestChurn:
    def test_graceful_leave_hands_data_to_successor(self):
        ring = ChordRing.from_ids([10, 50, 200], bits=8)
        ring.node(50).store[("x",)] = 7
        ring.remove_node(50, graceful=True)
        assert ring.node(200).store[("x",)] == 7

    def test_graceful_leave_merges_with_max(self):
        ring = ChordRing.from_ids([10, 50, 200], bits=8)
        ring.node(50).store[("x",)] = 7
        ring.node(200).store[("x",)] = 9
        ring.remove_node(50, graceful=True)
        assert ring.node(200).store[("x",)] == 9

    def test_crash_loses_data(self):
        ring = ChordRing.from_ids([10, 50, 200], bits=8)
        ring.node(50).store[("x",)] = 7
        ring.fail_node(50)
        assert ("x",) not in ring.node(200).store

    def test_ownership_transfers_after_removal(self):
        ring = ChordRing.from_ids([10, 50, 200], bits=8)
        assert ring.owner_of(30) == 50
        ring.remove_node(50)
        assert ring.owner_of(30) == 200

    def test_join_takes_over_keys(self):
        ring = ChordRing.from_ids([10, 200], bits=8)
        assert ring.owner_of(60) == 200
        ring.add_node(100)
        assert ring.owner_of(60) == 100

    def test_routing_still_correct_after_churn(self):
        ring = ChordRing.build(128, bits=32, seed=8)
        rng = rng_for(3, "churn")
        for victim in rng.sample(list(ring.node_ids()), 50):
            ring.fail_node(victim)
        for _ in range(200):
            key = rng.randrange(2**32)
            origin = ring.random_live_node(rng)
            assert ring.lookup(key, origin=origin).node_id == ring.owner_of(key)

    def test_remove_unknown_node_raises(self, ring):
        with pytest.raises(NodeNotFoundError):
            ring.remove_node(2**33)


class TestStoreProbe:
    def test_store_reaches_owner(self):
        ring = ChordRing.from_ids([10, 50, 200], bits=8)
        node_id, cost = ring.store(30, lambda node: node.store.update({"k": 1}), origin=10)
        assert node_id == 50
        assert ring.node(50).store["k"] == 1
        assert cost.hops >= 1

    def test_store_bytes_scale_with_hops(self):
        ring = ChordRing.build(256, bits=32, seed=12)
        rng = rng_for(1, "store")
        _, cost = ring.store(
            rng.randrange(2**32),
            lambda node: None,
            origin=ring.random_live_node(rng),
            payload_bytes=8,
        )
        assert cost.bytes == cost.hops * 8

    def test_probe_reads_without_routing(self):
        ring = ChordRing.from_ids([10, 50], bits=8)
        ring.node(50).store["v"] = 99
        assert ring.probe(50, lambda node: node.store.get("v")) == 99

    def test_load_tracker_records_accesses(self):
        ring = ChordRing.from_ids([10, 50, 200], bits=8)
        ring.load.reset()
        ring.store(30, lambda node: None, origin=10)
        assert ring.load.total > 0
        assert ring.load.count(50) >= 1


@settings(max_examples=30, deadline=None)
@given(
    ids=st.sets(st.integers(min_value=0, max_value=2**16 - 1), min_size=2, max_size=40),
    key=st.integers(min_value=0, max_value=2**16 - 1),
)
def test_property_routing_always_reaches_owner(ids, key):
    ring = ChordRing.from_ids(sorted(ids), bits=16)
    for origin in list(ids)[:5]:
        assert ring.lookup(key, origin=origin).node_id == ring.owner_of(key)
