"""Tests for digest-tree anti-entropy (repro.overlay.antientropy).

Covers the digest canonicalization (backend independence, segment
locality), the pairwise reconciliation protocol (push / homecoming,
OR-merge, expiry preservation, digest-floor bandwidth) and the
convergence property the whole subsystem exists for — including the
order-independence property test (any reconciliation schedule over any
divergent pair lands on the identical bit state).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.core.maintenance import antientropy_sweep, replica_divergence
from repro.core.tuples import vectors_mask, write_entry
from repro.overlay.antientropy import (
    AntiEntropyStats,
    store_digest,
    sync_stores,
    view_digest,
)
from repro.overlay.chord import ChordRing
from repro.overlay.faults import FaultEvent, FaultInjector, FaultPlan
from repro.overlay.messages import DEFAULT_SIZE_MODEL

# 16-bit space, same geometry as tests/core/test_read_repair.py.
IDS = [100, 20000, 33000, 40000, 50000, 60000]


def make_ring():
    return ChordRing.from_ids(IDS, bits=16)


def segment_of(bit: int) -> int:
    return bit // 4


def write_fn(node, metric, vector, bit, expiry):
    write_entry(node, metric, vector, bit, expiry)


def full_sync(dht, left, right, now=0, stats=None):
    return sync_stores(
        dht, left, right, now,
        segment_of=segment_of, write_fn=write_fn, stats=stats,
    )


class TestDigests:
    def test_equal_stores_equal_roots(self):
        ring = make_ring()
        for node_id in (100, 20000):
            write_entry(ring.node(node_id), "m", 3, 5, None)
            write_entry(ring.node(node_id), "m", 1, 9, None)
        left = store_digest(ring.node(100), 0, segment_of)
        right = store_digest(ring.node(20000), 0, segment_of)
        assert left.root == right.root
        assert left.segments == right.segments

    def test_difference_localized_to_segment(self):
        ring = make_ring()
        for node_id in (100, 20000):
            write_entry(ring.node(node_id), "m", 3, 1, None)   # segment 0
            write_entry(ring.node(node_id), "m", 1, 9, None)   # segment 2
        write_entry(ring.node(100), "m", 5, 9, None)           # diverge seg 2
        left = store_digest(ring.node(100), 0, segment_of)
        right = store_digest(ring.node(20000), 0, segment_of)
        assert left.root != right.root
        assert left.segments[0] == right.segments[0]
        assert left.segments[2] != right.segments[2]

    def test_expired_entries_do_not_digest(self):
        ring = make_ring()
        write_entry(ring.node(100), "m", 0, 1, 5)
        write_entry(ring.node(20000), "m", 0, 1, 9)
        # Different expiries hash differently while live...
        now_live = store_digest(ring.node(100), 0, segment_of)
        assert now_live.root != store_digest(ring.node(20000), 0, segment_of).root
        # ...but once both are dead the stores digest as empty and agree.
        left = store_digest(ring.node(100), 10, segment_of)
        right = store_digest(ring.node(20000), 10, segment_of)
        assert left.root == right.root

    def test_view_digest_matches_store_digest(self):
        ring = make_ring()
        write_entry(ring.node(100), "m", 2, 3, None)
        write_entry(ring.node(100), "x", 1, 7, None)
        view = {
            ("m", 3): vectors_mask(ring.node(100), "m", 3),
            ("x", 7): vectors_mask(ring.node(100), "x", 7),
        }
        assert (
            view_digest(view, segment_of).root
            == store_digest(ring.node(100), 0, segment_of).root
        )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_backend_independence(self, seed):
        """Packed and arena-backed deployments digest identically."""
        roots = {}
        for store in ("packed", "array"):
            ring = make_ring()
            dhs = DistributedHashSketch(
                ring,
                DHSConfig(key_bits=8, num_bitmaps=4, store=store, hash_seed=seed),
                seed=1,
            )
            dhs.insert_bulk("docs", range(200), origin=100, now=0)
            roots[store] = [
                store_digest(
                    ring.node(node_id), 0, dhs.mapping.interval_index
                ).root
                for node_id in ring.node_ids()
            ]
        assert roots["packed"] == roots["array"]


class TestSyncStores:
    def test_or_merge_both_directions(self):
        ring = make_ring()
        write_entry(ring.node(100), "m", 0, 2, None)
        write_entry(ring.node(20000), "m", 1, 2, None)
        write_entry(ring.node(20000), "m", 2, 6, None)
        stats = full_sync(ring, 100, 20000)
        for node_id in (100, 20000):
            assert vectors_mask(ring.node(node_id), "m", 2) == 0b11
            assert vectors_mask(ring.node(node_id), "m", 6) == 0b100
        assert stats.entries_written == 3
        assert stats.pairs_converged == 0  # was divergent this round

    def test_expiry_travels_with_entry(self):
        ring = make_ring()
        write_entry(ring.node(100), "m", 0, 2, 17)
        full_sync(ring, 100, 20000, now=0)
        slot = ring.node(20000).store[("m", 2)]
        assert slot.expiring is not None and slot.expiring[0] == 17

    def test_converged_pair_pays_only_the_digest_floor(self):
        ring = make_ring()
        for node_id in (100, 20000):
            write_entry(ring.node(node_id), "m", 3, 5, None)
        stats = full_sync(ring, 100, 20000)
        assert stats.pairs_converged == 1
        assert stats.entries_written == 0
        # Two directions x one root exchange x two digest messages.
        assert stats.cost.messages == 4
        assert stats.cost.bytes == 4 * DEFAULT_SIZE_MODEL.digest_bytes

    def test_mismatch_charges_segments_and_summaries(self):
        ring = make_ring()
        write_entry(ring.node(100), "m", 0, 2, None)
        stats = full_sync(ring, 100, 20000)
        floor = 4 * DEFAULT_SIZE_MODEL.digest_bytes
        assert stats.cost.bytes > floor
        assert stats.segments_mismatched >= 1
        assert stats.entries_sent == stats.entries_written == 1

    def test_sync_reaches_digest_fixed_point(self):
        ring = make_ring()
        write_entry(ring.node(100), "m", 0, 2, None)
        write_entry(ring.node(20000), "m", 5, 11, None)
        full_sync(ring, 100, 20000)
        again = full_sync(ring, 100, 20000)
        assert again.pairs_converged == 1
        assert again.entries_written == 0
        assert (
            store_digest(ring.node(100), 0, segment_of).root
            == store_digest(ring.node(20000), 0, segment_of).root
        )


# Entries to seed each side with: (vector, bit) pairs in a small range.
entry = st.tuples(st.integers(0, 7), st.integers(0, 15))
entries = st.lists(entry, max_size=12)


class TestConvergenceProperty:
    @given(left=entries, right=entries, late=entries, order=st.permutations([0, 1, 2]))
    @settings(max_examples=60, deadline=None)
    def test_any_schedule_converges_to_bit_identical_state(
        self, left, right, late, order
    ):
        """Satellite property: reconciliation order does not matter.

        Two replicas start divergent; syncs run in an arbitrary order,
        with more inserts interleaved between them; after a final full
        exchange both stores hold the identical live state — the OR of
        everything either side ever saw — and their digests agree.
        """
        ring = make_ring()
        for vector, bit in left:
            write_entry(ring.node(100), "m", vector, bit, None)
        for vector, bit in right:
            write_entry(ring.node(20000), "m", vector, bit, None)
        schedule = {
            0: lambda: full_sync(ring, 100, 20000),
            1: lambda: full_sync(ring, 20000, 100),
            2: lambda: [
                write_entry(ring.node(100 if i % 2 else 20000), "m", v, b, None)
                for i, (v, b) in enumerate(late)
            ],
        }
        for step in order:
            schedule[step]()
        full_sync(ring, 100, 20000)
        expected = {}
        for vector, bit in left + right + late:
            expected[bit] = expected.get(bit, 0) | (1 << vector)
        for node_id in (100, 20000):
            for bit, mask in expected.items():
                assert vectors_mask(ring.node(node_id), "m", bit) == mask
        assert (
            store_digest(ring.node(100), 0, segment_of).root
            == store_digest(ring.node(20000), 0, segment_of).root
        )


class TestSweep:
    def make_dhs(self, store="array"):
        ring = make_ring()
        plan = FaultPlan(events=(FaultEvent("amnesia", at=1, fraction=0.3, duration=2),))
        injector = FaultInjector(ring, plan, seed=4)
        dhs = DistributedHashSketch(
            injector,
            DHSConfig(
                key_bits=8, num_bitmaps=4, replication=2,
                read_repair=True, store=store,
            ),
            seed=1,
        )
        dhs.insert_bulk("docs", range(300), origin=100, now=0)
        return injector, dhs

    @pytest.mark.parametrize("store", ["packed", "array"])
    def test_amnesia_divergence_healed_in_bounded_rounds(self, store):
        """Repairs cascade one chain hop per round; divergence must hit
        zero within a couple of rounds, not asymptotically."""
        injector, dhs = self.make_dhs(store)
        injector.advance_to(3)  # victims back, stores empty
        assert dhs.replica_divergence(3) > 0
        first = dhs.antientropy(3)
        assert first.entries_written > 0
        dhs.antientropy(3)
        assert dhs.replica_divergence(3) == 0

    def test_rounds_reach_the_write_free_fixed_point(self):
        injector, dhs = self.make_dhs()
        injector.advance_to(3)
        for _ in range(6):
            if dhs.antientropy(3).entries_written == 0:
                break
        else:
            pytest.fail("anti-entropy never reached the write-free fixed point")
        settled = dhs.antientropy(3)
        assert settled.entries_written == 0
        assert settled.pairs_converged == settled.pairs
        # Converged rounds cost exactly the digest floor: two root
        # digests per direction, two directions per pair.
        assert settled.cost.bytes == (
            settled.pairs * 4 * DEFAULT_SIZE_MODEL.digest_bytes
        )

    def test_disabled_replication_is_a_noop(self):
        ring = make_ring()
        dhs = DistributedHashSketch(
            ring, DHSConfig(key_bits=8, num_bitmaps=4), seed=1
        )
        dhs.insert_bulk("docs", range(100), origin=100, now=0)
        stats = dhs.antientropy(0)
        assert stats == AntiEntropyStats()
        assert dhs.replica_divergence(0) == 0

    def test_sampled_round_is_deterministic(self):
        import random

        results = []
        for _ in range(2):
            injector, dhs = self.make_dhs()
            injector.advance_to(3)
            stats = dhs.antientropy(3, sample=2, rng=random.Random(9))
            results.append((stats.pairs, stats.entries_written, stats.cost.bytes))
        assert results[0] == results[1]
        assert results[0][0] <= 2 * 2  # at most sample x degree pairs

    def test_estimates_unchanged_by_reconciliation(self):
        """OR-merge adds no (vector, bit) values a count could not see."""
        ring = make_ring()
        dhs = DistributedHashSketch(
            ring,
            DHSConfig(key_bits=8, num_bitmaps=4, replication=2, read_repair=True),
            seed=1,
        )
        dhs.insert_bulk("docs", range(400), origin=100, now=0)
        before = dhs.count("docs", origin=100, now=0).estimate()
        dhs.antientropy(0)
        after = dhs.count("docs", origin=100, now=0).estimate()
        assert before == after
