"""Tests for the numpy-backed sorted membership array."""

import bisect
import random

import pytest

from repro.overlay.idarray import SortedIdArray


class TestSequenceProtocol:
    def test_empty(self):
        ids = SortedIdArray()
        assert len(ids) == 0
        assert list(ids) == []
        assert 3 not in ids
        with pytest.raises(IndexError):
            ids[0]

    def test_init_sorts_and_boxes_python_ints(self):
        ids = SortedIdArray(ids=[5, 1, 9])
        assert ids.tolist() == [1, 5, 9]
        assert isinstance(ids[0], int) and not hasattr(ids[0], "dtype")

    def test_negative_indexing_wraps(self):
        ids = SortedIdArray(ids=[1, 5, 9])
        assert ids[-1] == 9
        assert ids[-3] == 1
        with pytest.raises(IndexError):
            ids[-4]
        with pytest.raises(IndexError):
            ids[3]

    def test_slicing_returns_python_ints(self):
        ids = SortedIdArray(ids=[1, 5, 9, 12])
        assert ids[1:3] == [5, 9]
        assert all(isinstance(v, int) for v in ids[:])

    def test_contains_non_int_is_false(self):
        ids = SortedIdArray(ids=[1, 5])
        assert "5" not in ids
        assert 5 in ids
        assert 4 not in ids

    def test_random_choice_works(self):
        # random_live_node relies on Random.choice over the sequence.
        ids = SortedIdArray(ids=[2, 4, 6])
        rng = random.Random(0)
        assert rng.choice(ids) in {2, 4, 6}


class TestBinarySearch:
    def test_matches_stdlib_bisect(self):
        values = sorted(random.Random(7).sample(range(10_000), 200))
        ids = SortedIdArray(ids=values)
        for probe in [0, 1, 50, 9999, 10_000, values[3], values[-1]]:
            assert ids.bisect_left(probe) == bisect.bisect_left(values, probe)
            assert ids.bisect_right(probe) == bisect.bisect_right(values, probe)

    def test_lo_hi_window(self):
        values = [10, 20, 30, 40, 50]
        ids = SortedIdArray(ids=values)
        assert ids.bisect_left(30, 1, 4) == bisect.bisect_left(values, 30, 1, 4)
        assert ids.bisect_right(30, 1, 4) == bisect.bisect_right(values, 30, 1, 4)

    def test_uint64_overflow_clamps_high(self):
        # Kademlia/Pastry range queries probe base + 2^i, which can
        # equal 2^64 on a 64-bit space: every stored id is smaller.
        ids = SortedIdArray(bits=64, ids=[1, (1 << 64) - 1])
        assert ids.bisect_left(1 << 64) == 2
        assert ids.bisect_right(1 << 64) == 2
        assert ids.bisect_left(-1) == 0

    def test_wide_spaces_use_object_buffer(self):
        huge = 1 << 200
        ids = SortedIdArray(bits=256, ids=[3, huge])
        assert ids.tolist() == [3, huge]
        assert huge in ids
        assert ids.bisect_left(huge) == 1
        ids.insert(huge - 1)
        assert ids.tolist() == [3, huge - 1, huge]


class TestMutation:
    def test_insert_keeps_sorted_and_grows(self):
        ids = SortedIdArray()
        for value in [50, 10, 30, 20, 40, 60, 5, 55, 35, 15]:
            ids.insert(value)
        assert ids.tolist() == sorted([50, 10, 30, 20, 40, 60, 5, 55, 35, 15])

    def test_insert_duplicate_raises(self):
        ids = SortedIdArray(ids=[7])
        with pytest.raises(ValueError, match="already present"):
            ids.insert(7)

    def test_remove(self):
        ids = SortedIdArray(ids=[1, 2, 3])
        ids.remove(2)
        assert ids.tolist() == [1, 3]
        with pytest.raises(ValueError, match="not present"):
            ids.remove(2)

    def test_merge_bulk(self):
        ids = SortedIdArray(ids=[10, 30])
        ids.merge([20, 5, 40])
        assert ids.tolist() == [5, 10, 20, 30, 40]
        ids.merge([])
        assert ids.tolist() == [5, 10, 20, 30, 40]

    def test_merge_duplicate_leaves_unchanged(self):
        ids = SortedIdArray(ids=[10, 30])
        with pytest.raises(ValueError, match="already present"):
            ids.merge([20, 30])
        assert ids.tolist() == [10, 30]
        with pytest.raises(ValueError, match="already present"):
            ids.merge([21, 21])
        assert ids.tolist() == [10, 30]

    def test_single_value_merge_into_empty(self):
        ids = SortedIdArray()
        ids.merge([4])
        assert ids.tolist() == [4]

    def test_matches_list_model_under_churn(self):
        rng = random.Random(11)
        model = []
        ids = SortedIdArray()
        for _ in range(500):
            if model and rng.random() < 0.4:
                victim = rng.choice(model)
                model.remove(victim)
                ids.remove(victim)
            else:
                value = rng.randrange(1 << 32)
                if value not in model:
                    bisect.insort(model, value)
                    ids.insert(value)
        assert ids.tolist() == model

    def test_nbytes_tracks_buffer(self):
        ids = SortedIdArray(ids=list(range(100)))
        assert ids.nbytes == 100 * 8
