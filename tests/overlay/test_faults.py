"""Tests for the deterministic fault injector (repro.overlay.faults)."""

import pytest

from repro.errors import ConfigurationError, MessageDropped
from repro.overlay.chord import ChordRing
from repro.overlay.faults import FaultEvent, FaultInjector, FaultPlan

IDS = [100, 5000, 20000, 33000, 40000, 50000, 60000]


def make_ring(trace=False):
    return ChordRing.from_ids(IDS, bits=16, trace=trace)


def wrap(plan=None, seed=0, trace=False):
    ring = make_ring(trace=trace)
    return ring, FaultInjector(ring, plan or FaultPlan.empty(), seed=seed)


# ----------------------------------------------------------------------
# Plan / event validation.
# ----------------------------------------------------------------------
class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent("meteor", at=0, node_ids=(1,))

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent("crash", at=-1, node_ids=(1,))

    def test_exactly_one_victim_selector(self):
        with pytest.raises(ConfigurationError):
            FaultEvent("crash", at=0)
        with pytest.raises(ConfigurationError):
            FaultEvent("crash", at=0, node_ids=(1,), fraction=0.5)

    def test_timed_kinds_need_duration(self):
        with pytest.raises(ConfigurationError):
            FaultEvent("transient", at=0, node_ids=(1,))
        with pytest.raises(ConfigurationError):
            FaultEvent("amnesia", at=0, node_ids=(1,))

    def test_permanent_kinds_forbid_duration(self):
        with pytest.raises(ConfigurationError):
            FaultEvent("crash", at=0, node_ids=(1,), duration=3)

    def test_drop_probability_range(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(drop_probability=1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(drop_probability=-0.1)

    def test_empty_plan_is_empty(self):
        assert FaultPlan.empty().is_empty
        assert not FaultPlan(drop_probability=0.5).is_empty

    def test_double_wrap_rejected(self):
        ring, injector = wrap()
        with pytest.raises(ConfigurationError):
            FaultInjector(ring, FaultPlan.empty())

    def test_clock_cannot_run_backwards(self):
        ring, injector = wrap()
        injector.advance_to(5)
        with pytest.raises(ConfigurationError):
            injector.advance_to(3)


# ----------------------------------------------------------------------
# Empty-plan passthrough.
# ----------------------------------------------------------------------
class TestPassthrough:
    def test_empty_plan_lookup_identical_to_bare_ring(self):
        bare = make_ring()
        ring, injector = wrap()
        for key in (0, 12345, 47000, 65535):
            a = bare.lookup(key, origin=100)
            b = injector.lookup(key, origin=100)
            assert (a.node_id, a.cost.hops) == (b.node_id, b.cost.hops)

    def test_empty_plan_creates_no_drop_rng(self):
        _, injector = wrap()
        assert injector._drop_rng is None

    def test_membership_shared_with_inner(self):
        ring, injector = wrap()
        injector.add_node(31000)
        assert ring.has_node(31000)
        injector.remove_node(31000)
        assert not ring.has_node(31000)


# ----------------------------------------------------------------------
# Message drops.
# ----------------------------------------------------------------------
class TestDrops:
    def test_drops_are_seed_deterministic(self):
        outcomes = []
        for _ in range(2):
            _, injector = wrap(FaultPlan(drop_probability=0.5), seed=42)
            row = []
            for key in range(40):
                try:
                    injector.lookup(key * 1000, origin=100)
                    row.append(False)
                except MessageDropped:
                    row.append(True)
            outcomes.append(row)
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])

    def test_different_seed_different_stream(self):
        rows = []
        for seed in (1, 2):
            _, injector = wrap(FaultPlan(drop_probability=0.5), seed=seed)
            rows.append(
                [
                    isinstance(_try_lookup(injector, key * 997), MessageDropped)
                    for key in range(64)
                ]
            )
        assert rows[0] != rows[1]

    def test_drop_from_delays_losses(self):
        _, injector = wrap(FaultPlan(drop_probability=0.999, drop_from=5), seed=0)
        # Before tick 5 nothing is dropped, whatever the probability.
        for key in range(20):
            injector.lookup(key * 1000, origin=100)
        assert injector.dropped_messages == 0
        injector.advance_to(5)
        with pytest.raises(MessageDropped):
            for key in range(100):
                injector.lookup(key * 600, origin=100)
        assert injector.dropped_messages == 1

    def test_store_and_probe_also_drop(self):
        _, injector = wrap(FaultPlan(drop_probability=0.999), seed=0)
        with pytest.raises(MessageDropped):
            for _ in range(50):
                injector.store(1234, lambda node: None, origin=100)
        with pytest.raises(MessageDropped):
            for _ in range(50):
                injector.probe(100, lambda node: None)


def _try_lookup(injector, key):
    try:
        return injector.lookup(key, origin=100)
    except MessageDropped as exc:
        return exc


# ----------------------------------------------------------------------
# Scripted events.
# ----------------------------------------------------------------------
class TestEvents:
    def test_lazy_crash_marks_not_evicts(self):
        ring, injector = wrap(
            FaultPlan(events=(FaultEvent("lazy_crash", at=1, node_ids=(33000,)),))
        )
        injector.advance_to(1)
        assert ring.has_node(33000)
        assert not ring.is_alive(33000)

    def test_crash_leaves_membership(self):
        ring, injector = wrap(
            FaultPlan(events=(FaultEvent("crash", at=1, node_ids=(33000,)),))
        )
        injector.advance_to(1)
        assert not ring.has_node(33000)

    def test_events_not_applied_before_their_tick(self):
        ring, injector = wrap(
            FaultPlan(events=(FaultEvent("crash", at=3, node_ids=(33000,)),))
        )
        injector.advance_to(2)
        assert ring.has_node(33000)
        injector.advance_to(3)
        assert not ring.has_node(33000)

    def test_transient_node_down_then_back_with_store(self):
        ring, injector = wrap(
            FaultPlan(
                events=(FaultEvent("transient", at=2, node_ids=(33000,), duration=3),)
            )
        )
        ring.node(33000).store["k"] = "v"
        injector.advance_to(2)
        assert not injector.responsive(33000)
        assert injector.veto_eviction(33000)
        # Routing discovers the outage, charges a timeout, but the fault
        # layer vetoes the eviction.
        ring.timeout_repair(33000)
        assert ring.has_node(33000)
        injector.advance_to(5)
        assert injector.responsive(33000)
        assert ring.node(33000).store["k"] == "v"

    def test_partition_takes_down_a_set_together(self):
        ring, injector = wrap(
            FaultPlan(
                events=(
                    FaultEvent(
                        "partition", at=1, node_ids=(100, 5000, 20000), duration=2
                    ),
                )
            )
        )
        injector.advance_to(1)
        assert all(not injector.responsive(n) for n in (100, 5000, 20000))
        assert all(injector.responsive(n) for n in (33000, 40000, 50000, 60000))
        injector.advance_to(3)
        assert all(injector.responsive(n) for n in IDS)

    def test_amnesia_rejoins_with_empty_store(self):
        ring, injector = wrap(
            FaultPlan(events=(FaultEvent("amnesia", at=1, node_ids=(33000,), duration=2),))
        )
        ring.node(33000).store["k"] = "v"
        injector.advance_to(1)
        assert not ring.is_alive(33000)
        injector.advance_to(3)
        assert ring.is_alive(33000)
        assert ring.node(33000).store == {}

    def test_amnesiac_evicted_while_down_rejoins_as_new_member(self):
        ring, injector = wrap(
            FaultPlan(events=(FaultEvent("amnesia", at=1, node_ids=(33000,), duration=2),))
        )
        injector.advance_to(1)
        # A lookup discovers the corpse and evicts it before the rejoin.
        ring.timeout_repair(33000)
        assert not ring.has_node(33000)
        injector.advance_to(3)
        assert ring.has_node(33000)
        assert ring.is_alive(33000)
        assert ring.node(33000).store == {}

    def test_fraction_victims_deterministic_and_sized(self):
        picks = []
        for _ in range(2):
            ring, injector = wrap(
                FaultPlan(events=(FaultEvent("lazy_crash", at=1, fraction=0.4),)),
                seed=7,
            )
            injector.advance_to(1)
            picks.append(sorted(n for n in IDS if not ring.is_alive(n)))
        assert picks[0] == picks[1]
        assert len(picks[0]) == round(0.4 * len(IDS))

    def test_same_tick_order_rejoins_before_events(self):
        # The amnesiac comes back at tick 3; a lazy_crash at tick 3 then
        # strikes the *live* membership including it.
        ring, injector = wrap(
            FaultPlan(
                events=(
                    FaultEvent("amnesia", at=1, node_ids=(33000,), duration=2),
                    FaultEvent("lazy_crash", at=3, node_ids=(33000,)),
                )
            )
        )
        injector.advance_to(3)
        assert ring.has_node(33000)
        assert not ring.is_alive(33000)

    def test_batched_advance_equals_stepped_advance(self):
        plan = FaultPlan(
            events=(
                FaultEvent("amnesia", at=1, fraction=0.3, duration=2),
                FaultEvent("transient", at=2, fraction=0.3, duration=2),
                FaultEvent("lazy_crash", at=4, fraction=0.2),
            )
        )
        ring_a, inj_a = wrap(plan, seed=11)
        inj_a.advance_to(6)
        ring_b, inj_b = wrap(plan, seed=11)
        for t in range(7):
            inj_b.advance_to(t)
        state_a = [(n, ring_a.is_alive(n)) for n in sorted(ring_a.node_ids())]
        state_b = [(n, ring_b.is_alive(n)) for n in sorted(ring_b.node_ids())]
        assert state_a == state_b
