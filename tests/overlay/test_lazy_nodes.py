"""Lazy node materialization and the memory-lean membership contract."""

import tracemalloc

import pytest

from repro.errors import NodeNotFoundError
from repro.obs import runtime as obs
from repro.obs.metrics import (
    GAUGE_RING_MEMBERSHIP_BYTES_PER_NODE,
    GAUGE_RING_NODE_HEAP_BYTES,
)
from repro.overlay.chord import ChordRing

#: tracemalloc-peak budget per node for a bulk-built ring.  The lean
#: path costs ~150 B/node transiently (the id-dedup set) and 8 B/node
#: resident; reintroducing per-node Python objects (Node + dict entry,
#: ~400+ B each) trips this immediately.
HEAP_BYTES_PER_NODE_CEILING = 320

#: Resident membership bytes per node (one uint64 array slot, plus
#: slack for capacity-doubling growth after churn).
MEMBERSHIP_BYTES_PER_NODE_CEILING = 16


class TestLazyMaterialization:
    def test_build_materializes_no_nodes(self):
        ring = ChordRing.build(512, seed=3)
        assert ring.size == 512
        assert ring._nodes == {}

    def test_node_materializes_on_demand(self):
        ring = ChordRing.build(64, seed=3)
        nid = ring.node_ids()[7]
        assert ring.node_if_materialized(nid) is None
        node = ring.node(nid)
        assert node.node_id == nid and node.alive and node.store == {}
        assert ring.node_if_materialized(nid) is node
        assert ring.node(nid) is node  # same object on re-touch

    def test_node_unknown_id_raises(self):
        ring = ChordRing.build(8, seed=3)
        missing = next(i for i in range(1000) if not ring.has_node(i))
        with pytest.raises(NodeNotFoundError):
            ring.node(missing)

    def test_unmaterialized_members_are_alive(self):
        ring = ChordRing.build(64, seed=3)
        nid = ring.node_ids()[0]
        assert ring.is_alive(nid)
        assert ring.live_node(nid) is not None  # materializes
        assert ring.node_if_materialized(nid) is not None

    def test_mark_failed_materializes_and_kills(self):
        ring = ChordRing.build(64, seed=3)
        nid = ring.node_ids()[5]
        ring.mark_failed(nid)
        assert not ring.is_alive(nid)
        assert ring.live_node(nid) is None
        assert nid in [n for n in ring.node_ids()]  # still routable corpse

    def test_remove_unmaterialized_node_graceful(self):
        ring = ChordRing.build(64, seed=3)
        nid = ring.node_ids()[9]
        ring.remove_node(nid, graceful=True)
        assert not ring.has_node(nid)
        assert ring.size == 63
        # Nothing to merge: the heir stays unmaterialized too.
        assert ring.node_if_materialized(ring.successor_id(nid)) is None

    def test_lookup_materializes_nothing(self):
        ring = ChordRing.build(256, seed=3, trace=True)
        origin = ring.node_ids()[0]
        for key in (1, 2**32, 2**63):
            result = ring.lookup(key, origin=origin)
            assert ring.has_node(result.node_id)
        assert ring._nodes == {}

    def test_store_materializes_only_the_owner(self):
        ring = ChordRing.build(256, seed=3)
        ring.store(123456789, lambda node: node.store.__setitem__("k", 1))
        assert len(ring._nodes) == 1

    def test_responsive_node_ids_skips_dead_materialized(self):
        ring = ChordRing.build(32, seed=3)
        victim = ring.node_ids()[4]
        ring.mark_failed(victim)
        responsive = ring.responsive_node_ids()
        assert victim not in responsive
        assert len(responsive) == 31

    def test_bulk_join_resets_routing_caches(self):
        ring = ChordRing.build(32, seed=3)
        origin = ring.node_ids()[0]
        ring.lookup(1 << 40, origin=origin)  # warm fingers + owner memo
        new_ids = [i for i in range(100, 2100, 100) if not ring.has_node(i)]
        ring.add_nodes_bulk(new_ids)
        assert ring.size == 32 + len(new_ids)
        assert ring._fingers == {} and ring._owner_cache == {}
        # Ownership reflects the merged membership.
        assert ring.owner_of(100) == 100


class TestMemoryRegression:
    def test_bulk_build_heap_ceiling_n1e4(self):
        """A refactor reintroducing per-node dict bloat fails here."""
        n = 10_000
        tracemalloc.start()
        try:
            ring = ChordRing.build(n, seed=13)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        heap_per_node = peak / n
        membership_per_node = ring.membership_nbytes() / ring.size
        obs.METRICS.set_gauge(GAUGE_RING_NODE_HEAP_BYTES, heap_per_node)
        obs.METRICS.set_gauge(
            GAUGE_RING_MEMBERSHIP_BYTES_PER_NODE, membership_per_node
        )
        assert ring._nodes == {}
        assert heap_per_node < HEAP_BYTES_PER_NODE_CEILING
        assert membership_per_node <= MEMBERSHIP_BYTES_PER_NODE_CEILING
