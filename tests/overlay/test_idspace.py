"""Tests for circular id-space arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.overlay.idspace import IdSpace

SPACE = IdSpace(8)  # small space: every case is enumerable
U8 = st.integers(min_value=0, max_value=255)


class TestBasics:
    def test_size(self):
        assert IdSpace(8).size == 256
        assert IdSpace(64).size == 2**64

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            IdSpace(0)
        with pytest.raises(ValueError):
            IdSpace(300)

    def test_contains(self):
        assert SPACE.contains(0)
        assert SPACE.contains(255)
        assert not SPACE.contains(256)
        assert not SPACE.contains(-1)

    def test_wrap(self):
        assert SPACE.wrap(256) == 0
        assert SPACE.wrap(257) == 1
        assert SPACE.wrap(255) == 255

    def test_distance_clockwise(self):
        assert SPACE.distance(10, 20) == 10
        assert SPACE.distance(20, 10) == 246
        assert SPACE.distance(5, 5) == 0

    def test_xor_distance(self):
        assert SPACE.xor_distance(0b1010, 0b0110) == 0b1100


class TestIntervals:
    def test_open_interval_simple(self):
        assert SPACE.in_open(15, 10, 20)
        assert not SPACE.in_open(10, 10, 20)
        assert not SPACE.in_open(20, 10, 20)

    def test_open_interval_wrapping(self):
        assert SPACE.in_open(250, 240, 5)
        assert SPACE.in_open(2, 240, 5)
        assert not SPACE.in_open(100, 240, 5)

    def test_open_degenerate_is_whole_ring_minus_a(self):
        assert SPACE.in_open(5, 10, 10)
        assert not SPACE.in_open(10, 10, 10)

    def test_half_open_includes_right(self):
        assert SPACE.in_half_open(20, 10, 20)
        assert not SPACE.in_half_open(10, 10, 20)

    def test_half_open_wrapping(self):
        assert SPACE.in_half_open(5, 240, 5)
        assert not SPACE.in_half_open(240, 240, 5)

    def test_half_open_degenerate_is_whole_ring(self):
        assert SPACE.in_half_open(123, 10, 10)
        assert SPACE.in_half_open(10, 10, 10)

    @given(U8, U8, U8)
    def test_open_matches_enumeration(self, x, a, b):
        walk = set()
        cursor = SPACE.wrap(a + 1)
        while cursor != b:
            if cursor == a and a == b:
                break
            walk.add(cursor)
            if len(walk) > 256:
                break
            cursor = SPACE.wrap(cursor + 1)
        expected = x in walk if a != b else x != a
        assert SPACE.in_open(x, a, b) == expected

    @given(U8, U8, U8)
    def test_half_open_is_open_plus_endpoint(self, x, a, b):
        if a == b:
            assert SPACE.in_half_open(x, a, b)
        else:
            assert SPACE.in_half_open(x, a, b) == (SPACE.in_open(x, a, b) or x == b)
