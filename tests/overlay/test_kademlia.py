"""Tests for the Kademlia overlay."""

import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.overlay.kademlia import KademliaOverlay
from repro.sim.seeds import rng_for


@pytest.fixture(scope="module")
def overlay():
    return KademliaOverlay.build(256, bits=32, seed=21)


def brute_force_owner(ids, key):
    return min(ids, key=lambda n: n ^ key)


class TestOwnership:
    def test_owner_matches_brute_force_small(self):
        ids = [0b0001, 0b0110, 0b1010, 0b1111]
        overlay = KademliaOverlay.from_ids(ids, bits=4)
        for key in range(16):
            assert overlay.owner_of(key) == brute_force_owner(ids, key)

    def test_owner_matches_brute_force_random(self, overlay):
        ids = list(overlay.node_ids())
        rng = rng_for(2, "kad-owner")
        for _ in range(300):
            key = rng.randrange(2**32)
            assert overlay.owner_of(key) == brute_force_owner(ids, key)

    def test_own_id_is_self_owned(self, overlay):
        for node_id in list(overlay.node_ids())[:20]:
            assert overlay.owner_of(node_id) == node_id

    @settings(max_examples=40, deadline=None)
    @given(
        ids=st.sets(st.integers(min_value=0, max_value=2**12 - 1), min_size=1, max_size=30),
        key=st.integers(min_value=0, max_value=2**12 - 1),
    )
    def test_property_owner_is_xor_min(self, ids, key):
        overlay = KademliaOverlay.from_ids(sorted(ids), bits=12)
        assert overlay.owner_of(key) == brute_force_owner(ids, key)


class TestBuckets:
    def test_contact_is_in_bucket(self, overlay):
        node_id = list(overlay.node_ids())[0]
        for i in range(32):
            contact = overlay.bucket_contact(node_id, i)
            if contact is not None:
                assert (node_id ^ contact).bit_length() - 1 == i

    def test_contact_cached(self, overlay):
        node_id = list(overlay.node_ids())[3]
        assert overlay.bucket_contact(node_id, 30) == overlay.bucket_contact(node_id, 30)

    def test_cache_invalidated_on_churn(self):
        overlay = KademliaOverlay.build(64, bits=32, seed=5)
        node_id = list(overlay.node_ids())[0]
        overlay.bucket_contact(node_id, 31)
        overlay.add_node(123456)
        assert not overlay._contact_cache


class TestRouting:
    def test_lookup_reaches_owner(self, overlay):
        rng = rng_for(7, "kad-route")
        for _ in range(400):
            key = rng.randrange(2**32)
            origin = overlay.random_live_node(rng)
            assert overlay.lookup(key, origin=origin).node_id == overlay.owner_of(key)

    def test_hops_logarithmic(self):
        overlay = KademliaOverlay.build(1024, bits=64, seed=9)
        rng = rng_for(8, "kad-hops")
        hops = [
            overlay.lookup(rng.randrange(2**64), origin=overlay.random_live_node(rng)).cost.hops
            for _ in range(400)
        ]
        assert statistics.mean(hops) < 10  # log2(1024) = 10
        assert max(hops) <= 20

    def test_xor_distance_monotone_along_path(self, overlay):
        rng = rng_for(3, "kad-mono")
        key = rng.randrange(2**32)
        result = overlay.lookup(key, origin=overlay.random_live_node(rng))
        distances = [node ^ key for node in result.cost.nodes_visited]
        assert all(a > b for a, b in zip(distances, distances[1:]))

    def test_routing_after_failures(self):
        overlay = KademliaOverlay.build(128, bits=32, seed=14)
        rng = rng_for(4, "kad-fail")
        for victim in rng.sample(list(overlay.node_ids()), 40):
            overlay.fail_node(victim)
        for _ in range(150):
            key = rng.randrange(2**32)
            origin = overlay.random_live_node(rng)
            assert overlay.lookup(key, origin=origin).node_id == overlay.owner_of(key)


class TestConstruction:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            KademliaOverlay.build(0)
        with pytest.raises(ConfigurationError):
            KademliaOverlay.from_ids([], bits=8)

    def test_deterministic(self):
        a = KademliaOverlay.build(32, bits=32, seed=6)
        b = KademliaOverlay.build(32, bits=32, seed=6)
        assert list(a.node_ids()) == list(b.node_ids())
