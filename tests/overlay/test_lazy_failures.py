"""Tests for the lazy-failure (undetected crash) model."""

import pytest

from repro.errors import EmptyOverlayError
from repro.overlay.chord import ChordRing
from repro.overlay.failures import fail_fraction
from repro.overlay.kademlia import KademliaOverlay
from repro.overlay.pastry import PastryOverlay
from repro.sim.seeds import rng_for

OVERLAYS = [
    lambda: ChordRing.build(128, bits=32, seed=6),
    lambda: KademliaOverlay.build(128, bits=32, seed=6),
    lambda: PastryOverlay.build(128, bits=32, seed=6),
]


@pytest.fixture(params=OVERLAYS, ids=["chord", "kademlia", "pastry"])
def overlay(request):
    return request.param()


class TestMarkFailed:
    def test_marked_node_stays_in_routing_state(self, overlay):
        victim = list(overlay.node_ids())[3]
        overlay.mark_failed(victim)
        assert victim in overlay.node_ids()
        assert not overlay.is_alive(victim)

    def test_repair_evicts(self, overlay):
        victim = list(overlay.node_ids())[3]
        overlay.mark_failed(victim)
        overlay.repair(victim)
        assert victim not in overlay.node_ids()

    def test_repair_is_idempotent(self, overlay):
        victim = list(overlay.node_ids())[3]
        overlay.mark_failed(victim)
        overlay.repair(victim)
        overlay.repair(victim)  # second call is a no-op
        assert not overlay.is_alive(victim)


class TestRoutingAroundLazyFailures:
    def test_lookup_still_reaches_a_live_owner(self, overlay):
        rng = rng_for(2, "lazy")
        fail_fraction(overlay, 0.3, seed=7, lazy=True)
        for _ in range(200):
            key = rng.randrange(2**32)
            origin = overlay.random_live_node(rng)
            result = overlay.lookup(key, origin=origin)
            assert overlay.is_alive(result.node_id)

    def test_discovery_costs_extra_hops(self):
        """Routing through a lazily-failed ring pays timeout hops, at
        least until the dead contacts have been discovered."""

        def total_hops(lazy_failures: bool):
            overlay = ChordRing.build(256, bits=32, seed=9)
            rng = rng_for(3, "hops", lazy_failures)
            if lazy_failures:
                fail_fraction(overlay, 0.3, seed=7, lazy=True)
            else:
                fail_fraction(overlay, 0.3, seed=7, lazy=False)
            return sum(
                overlay.lookup(
                    rng.randrange(2**32), origin=overlay.random_live_node(rng)
                ).cost.hops
                for _ in range(150)
            )

        assert total_hops(lazy_failures=True) > total_hops(lazy_failures=False)

    def test_repairs_accumulate(self, overlay):
        rng = rng_for(4, "repairs")
        victims = fail_fraction(overlay, 0.3, seed=8, lazy=True)
        before = len(overlay.node_ids())
        for _ in range(300):
            overlay.lookup(rng.randrange(2**32), origin=overlay.random_live_node(rng))
        evicted = before - len(overlay.node_ids())
        assert evicted > len(victims) // 3  # traffic heals the ring

    def test_random_live_node_skips_failed(self, overlay):
        rng = rng_for(5, "skip")
        fail_fraction(overlay, 0.5, seed=9, lazy=True)
        for _ in range(50):
            assert overlay.is_alive(overlay.random_live_node(rng))

    def test_all_failed_raises(self):
        overlay = ChordRing.from_ids([1, 2, 3], bits=8)
        for node_id in (1, 2, 3):
            overlay.mark_failed(node_id)
        with pytest.raises(EmptyOverlayError):
            overlay.random_live_node(rng_for(1, "x"))


class TestCountingThroughLazyFailures:
    def test_count_survives_lazy_crashes(self):
        from repro.core.config import DHSConfig
        from repro.core.dhs import DistributedHashSketch

        ring = ChordRing.build(128, bits=32, seed=10)
        dhs = DistributedHashSketch(
            ring, DHSConfig(key_bits=16, num_bitmaps=8, lim=40, replication=3), seed=4
        )
        node_ids = list(ring.node_ids())
        for i in range(4000):
            dhs.insert("docs", i, origin=node_ids[i % len(node_ids)])
        fail_fraction(ring, 0.2, seed=11, lazy=True)
        result = dhs.count("docs")
        # Replicated bits survive; probes of dead nodes were skipped.
        assert result.estimate() == pytest.approx(4000, rel=0.6)
