"""Tests for the Pastry overlay."""

import statistics

import pytest

from repro.errors import ConfigurationError
from repro.overlay.pastry import PastryOverlay
from repro.sim.seeds import rng_for


@pytest.fixture(scope="module")
def overlay():
    return PastryOverlay.build(256, bits=32, digit_bits=4, seed=31)


def brute_force_owner(space_size, ids, key):
    def circ(a, b):
        d = (b - a) % space_size
        return min(d, space_size - d)

    best = min(circ(n, key) for n in ids)
    return min(n for n in ids if circ(n, key) == best)


class TestConstruction:
    def test_build(self, overlay):
        assert overlay.size == 256

    def test_digit_bits_validation(self):
        with pytest.raises(ConfigurationError):
            PastryOverlay.build(4, bits=32, digit_bits=0)
        with pytest.raises(ConfigurationError):
            PastryOverlay.build(4, bits=32, digit_bits=5)  # 5 does not divide 32

    def test_from_ids(self):
        overlay = PastryOverlay.from_ids([1, 100, 200], bits=8, digit_bits=4)
        assert list(overlay.node_ids()) == [1, 100, 200]
        with pytest.raises(ConfigurationError):
            PastryOverlay.from_ids([], bits=8)


class TestOwnership:
    def test_owner_is_numerically_closest(self, overlay):
        ids = list(overlay.node_ids())
        rng = rng_for(1, "pastry-owner")
        for _ in range(300):
            key = rng.randrange(2**32)
            assert overlay.owner_of(key) == brute_force_owner(2**32, ids, key)

    def test_wraparound_ownership(self):
        overlay = PastryOverlay.from_ids([10, 240], bits=8, digit_bits=4)
        assert overlay.owner_of(250) == 240
        assert overlay.owner_of(255) == 10  # closer across the wrap
        assert overlay.owner_of(0) == 10

    def test_equidistant_key_prefers_lower_id(self):
        overlay = PastryOverlay.from_ids([10, 240], bits=8, digit_bits=4)
        # 253 is exactly 13 away from both nodes (240 + 13, 10 - 13 mod 256).
        assert overlay.owner_of(253) == 10

    def test_tie_breaks_to_lower_id(self):
        overlay = PastryOverlay.from_ids([10, 20], bits=8, digit_bits=4)
        assert overlay.owner_of(15) == 10


class TestSharedDigits:
    def test_counts_leading_digits(self):
        overlay = PastryOverlay.from_ids([0], bits=16, digit_bits=4)
        assert overlay.shared_digits(0x1234, 0x1234) == 4
        assert overlay.shared_digits(0x1234, 0x1235) == 3
        assert overlay.shared_digits(0x1234, 0x1334) == 1
        assert overlay.shared_digits(0x1234, 0xF234) == 0


class TestRouting:
    def test_lookup_reaches_owner(self, overlay):
        rng = rng_for(2, "pastry-route")
        for _ in range(400):
            key = rng.randrange(2**32)
            origin = overlay.random_live_node(rng)
            assert overlay.lookup(key, origin=origin).node_id == overlay.owner_of(key)

    def test_hops_logarithmic(self):
        overlay = PastryOverlay.build(1024, bits=64, digit_bits=4, seed=7)
        rng = rng_for(3, "pastry-hops")
        hops = [
            overlay.lookup(rng.randrange(2**64), origin=overlay.random_live_node(rng)).cost.hops
            for _ in range(300)
        ]
        # log_16(1024) = 2.5; allow leaf-set tail steps.
        assert statistics.mean(hops) < 8
        assert max(hops) <= 30

    def test_fewer_hops_than_chord(self):
        """Base-16 digits fix 4 bits per hop vs Chord's ~1 halving."""
        from repro.overlay.chord import ChordRing

        pastry = PastryOverlay.build(512, bits=64, digit_bits=4, seed=9)
        chord = ChordRing.build(512, bits=64, seed=9)
        rng = rng_for(4, "compare")

        def mean_hops(overlay):
            local = rng_for(5, "keys")
            return statistics.mean(
                overlay.lookup(
                    local.randrange(2**64), origin=overlay.random_live_node(local)
                ).cost.hops
                for _ in range(300)
            )

        assert mean_hops(pastry) < mean_hops(chord)

    def test_routing_after_churn(self):
        overlay = PastryOverlay.build(128, bits=32, digit_bits=4, seed=11)
        rng = rng_for(6, "pastry-churn")
        for victim in rng.sample(list(overlay.node_ids()), 40):
            overlay.fail_node(victim)
        for _ in range(200):
            key = rng.randrange(2**32)
            origin = overlay.random_live_node(rng)
            assert overlay.lookup(key, origin=origin).node_id == overlay.owner_of(key)

    def test_lookup_from_owner_is_free(self, overlay):
        key = 999_999
        owner = overlay.owner_of(key)
        assert overlay.lookup(key, origin=owner).cost.hops == 0


class TestDHSIntegration:
    def test_dhs_counts_over_pastry(self):
        from repro.core.config import DHSConfig
        from repro.core.dhs import DistributedHashSketch

        overlay = PastryOverlay.build(64, bits=32, digit_bits=4, seed=13)
        dhs = DistributedHashSketch(
            overlay, DHSConfig(key_bits=16, num_bitmaps=8, lim=70), seed=3
        )
        node_ids = list(overlay.node_ids())
        for i in range(3000):
            dhs.insert("docs", i, origin=node_ids[i % len(node_ids)])
        estimate = dhs.count("docs").estimate()
        assert estimate == pytest.approx(3000, rel=0.6)


from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=30, deadline=None)
@given(
    ids=st.sets(st.integers(min_value=0, max_value=2**16 - 1), min_size=1, max_size=25),
    key=st.integers(min_value=0, max_value=2**16 - 1),
)
def test_property_owner_is_circular_closest(ids, key):
    overlay = PastryOverlay.from_ids(sorted(ids), bits=16, digit_bits=4)
    assert overlay.owner_of(key) == brute_force_owner(2**16, ids, key)


@settings(max_examples=20, deadline=None)
@given(
    ids=st.sets(st.integers(min_value=0, max_value=2**16 - 1), min_size=2, max_size=25),
    key=st.integers(min_value=0, max_value=2**16 - 1),
)
def test_property_routing_reaches_owner(ids, key):
    overlay = PastryOverlay.from_ids(sorted(ids), bits=16, digit_bits=4)
    for origin in sorted(ids)[:4]:
        assert overlay.lookup(key, origin=origin).node_id == overlay.owner_of(key)
