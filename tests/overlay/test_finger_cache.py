"""The memoized finger/owner caches must be invisible to routing.

The cache is exact: every lookup on a cached ring must be hop-for-hop
identical (result, hops, messages, visited path) to the same lookup on
a ring that recomputes fingers from the live membership on every probe
— across arbitrary interleavings of joins, graceful leaves, crashes,
lazy failures and repair-triggering lookups.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.chord import ChordRing
from repro.sim.seeds import rng_for


def _ring_pair(ids, bits=16):
    """The same membership with and without the finger cache."""
    cached = ChordRing.from_ids(sorted(ids), bits=bits, trace=True)
    uncached = ChordRing.from_ids(
        sorted(ids), bits=bits, trace=True, finger_cache=False
    )
    return cached, uncached


def _assert_lookup_identical(cached, uncached, key, origin):
    a = cached.lookup(key, origin=origin)
    b = uncached.lookup(key, origin=origin)
    assert a.node_id == b.node_id
    assert a.cost.hops == b.cost.hops
    assert a.cost.messages == b.cost.messages
    assert a.cost.nodes_visited == b.cost.nodes_visited


class TestFingerMemo:
    def test_finger_matches_definition_and_memoizes(self):
        ring = ChordRing.from_ids([0, 64, 128, 192], bits=8)
        assert ring.finger(0, 5) == 64  # successor(0 + 32) = 64
        assert ring._fingers[0][5] == 64
        assert (0, 5) in ring._finger_rev[64]
        assert ring.finger(0, 5) == 64  # served from the memo

    def test_join_invalidates_covering_finger(self):
        ring = ChordRing.from_ids([0, 64, 128, 192], bits=8)
        assert ring.finger(0, 5) == 64
        ring.add_node(40)  # slots inside [32, 64): successor(32) changes
        assert ring.finger(0, 5) == 40

    def test_join_outside_start_arc_keeps_entry_fresh(self):
        ring = ChordRing.from_ids([0, 64, 128, 192], bits=8)
        assert ring.finger(0, 5) == 64
        ring.add_node(100)  # in (64, 128): cannot affect successor(32)
        assert ring.finger(0, 5) == 64

    def test_leave_invalidates_entries_pointing_at_departed(self):
        ring = ChordRing.from_ids([0, 64, 128, 192], bits=8)
        assert ring.finger(0, 5) == 64
        ring.remove_node(64)
        assert ring.finger(0, 5) == 128
        assert 64 not in ring._finger_rev

    def test_leave_drops_departed_nodes_own_table(self):
        ring = ChordRing.from_ids([0, 64, 128, 192], bits=8)
        assert ring.finger(64, 5) == 128  # successor(96)
        ring.remove_node(64)
        assert 64 not in ring._fingers
        assert (64, 5) not in ring._finger_rev.get(128, set())

    def test_owner_cache_tracks_membership(self):
        ring = ChordRing.from_ids([10, 50, 200], bits=8)
        assert ring.owner_of(30) == 50
        ring.add_node(40)
        assert ring.owner_of(30) == 40
        ring.remove_node(40)
        assert ring.owner_of(30) == 50
        ring.remove_node(50)
        assert ring.owner_of(30) == 200

    def test_uncached_mode_has_no_memo_state(self):
        ring = ChordRing.from_ids([0, 64, 128], bits=8, finger_cache=False)
        rng = rng_for(1, "uncached")
        for _ in range(50):
            ring.lookup(rng.randrange(256), origin=0)
        assert ring._fingers == {}


class TestRoutingEquivalence:
    def test_static_ring_equivalent(self):
        cached, uncached = _ring_pair(range(0, 2**16, 397))
        rng = rng_for(2, "static")
        for _ in range(300):
            key = rng.randrange(2**16)
            origin = cached.random_live_node(rng)
            _assert_lookup_identical(cached, uncached, key, origin)

    def test_equivalent_through_churn(self):
        cached, uncached = _ring_pair(range(0, 2**16, 811))
        rng = rng_for(3, "churn")
        for step in range(120):
            roll = rng.random()
            if roll < 0.2:
                candidate = rng.randrange(2**16)
                if not cached.has_node(candidate):
                    cached.add_node(candidate)
                    uncached.add_node(candidate)
            elif roll < 0.4 and cached.size > 4:
                victim = rng.choice(list(cached.node_ids()))
                graceful = rng.random() < 0.5
                cached.remove_node(victim, graceful=graceful)
                uncached.remove_node(victim, graceful=graceful)
            key = rng.randrange(2**16)
            origin = cached.random_live_node(rng)
            _assert_lookup_identical(cached, uncached, key, origin)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_property_equivalent_under_interleavings(self, data):
        """Joins, leaves, crashes, lazy failures and repair-triggering
        lookups interleaved at random: the cached ring never diverges."""
        ids = data.draw(
            st.sets(st.integers(0, 2**12 - 1), min_size=6, max_size=24)
        )
        cached, uncached = _ring_pair(ids, bits=12)
        steps = data.draw(st.integers(min_value=3, max_value=15))
        for _ in range(steps):
            op = data.draw(
                st.sampled_from(["join", "leave", "crash", "lazy", "lookup"])
            )
            live = [n for n in cached.node_ids() if cached.is_alive(n)]
            if op == "join":
                candidate = data.draw(st.integers(0, 2**12 - 1))
                if not cached.has_node(candidate):
                    cached.add_node(candidate)
                    uncached.add_node(candidate)
            elif op in ("leave", "crash") and cached.size > 3:
                victim = data.draw(st.sampled_from(sorted(cached.node_ids())))
                cached.remove_node(victim, graceful=op == "leave")
                uncached.remove_node(victim, graceful=op == "leave")
            elif op == "lazy" and len(live) > 2:
                victim = data.draw(st.sampled_from(sorted(live)))
                cached.mark_failed(victim)
                uncached.mark_failed(victim)
                live.remove(victim)
            if not live:
                continue
            key = data.draw(st.integers(0, 2**12 - 1))
            origin = data.draw(st.sampled_from(sorted(live)))
            if cached.is_alive(origin):
                _assert_lookup_identical(cached, uncached, key, origin)


class TestLazyEagerEquivalence:
    """Sparse lazily-filled finger memos must answer ``lookup()``
    identically to eagerly-built full tables (``materialize_fingers``)
    across random join/leave sequences — materialization order is an
    implementation detail that can never leak into routing."""

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_lookup_identical_lazy_vs_eager(self, data):
        ids = data.draw(
            st.sets(st.integers(0, 2**12 - 1), min_size=4, max_size=20)
        )
        lazy = ChordRing.from_ids(sorted(ids), bits=12, trace=True)
        eager = ChordRing.from_ids(sorted(ids), bits=12, trace=True)
        for node_id in list(eager.node_ids()):
            eager.materialize_fingers(node_id)
        steps = data.draw(st.integers(min_value=1, max_value=8))
        for _ in range(steps):
            op = data.draw(st.sampled_from(["join", "leave", "lookup"]))
            if op == "join":
                candidate = data.draw(st.integers(0, 2**12 - 1))
                if not lazy.has_node(candidate):
                    lazy.add_node(candidate)
                    eager.add_node(candidate)
            elif op == "leave" and lazy.size > 3:
                victim = data.draw(st.sampled_from(sorted(lazy.node_ids())))
                lazy.remove_node(victim)
                eager.remove_node(victim)
            # The eager ring re-materializes every table after churn;
            # the lazy ring fills only what routing touches.
            for node_id in list(eager.node_ids()):
                eager.materialize_fingers(node_id)
            key = data.draw(st.integers(0, 2**12 - 1))
            origin = data.draw(st.sampled_from(sorted(lazy.node_ids())))
            _assert_lookup_identical(lazy, eager, key, origin)
            # Spot-check the finger definition itself.
            node_id = data.draw(st.sampled_from(sorted(lazy.node_ids())))
            i = data.draw(st.integers(min_value=0, max_value=11))
            expected = lazy.owner_of((node_id + (1 << i)) % (1 << 12))
            assert lazy.finger(node_id, i) == expected
            assert eager.finger(node_id, i) == expected

    def test_materialize_fingers_fills_full_table(self):
        ring = ChordRing.from_ids([0, 64, 128, 192], bits=8)
        table = ring.materialize_fingers(0)
        assert set(table) == set(range(8))
        assert table[5] == 64
        assert ring._fingers[0] == table

    def test_materialize_fingers_requires_cache(self):
        from repro.errors import ConfigurationError

        ring = ChordRing.from_ids([0, 64], bits=8, finger_cache=False)
        with pytest.raises(ConfigurationError):
            ring.materialize_fingers(0)


class TestDeadOwnerEviction:
    def test_dead_owner_and_dead_first_successor(self):
        """Regression: when the key's owner *and* its first successor
        are both (lazily) dead, one lookup walks the successor list,
        evicts both, and resolves to the next live node."""
        ring = ChordRing.from_ids([10, 50, 60, 200], bits=8)
        assert ring.owner_of(40) == 50
        ring.mark_failed(50)
        ring.mark_failed(60)
        result = ring.lookup(40, origin=10)
        assert result.node_id == 200
        assert not ring.has_node(50)  # evicted
        assert not ring.has_node(60)  # evicted via the successor walk
        assert result.cost.hops >= 2  # one timeout probe per eviction

    def test_eviction_chain_matches_uncached(self):
        cached, uncached = _ring_pair([10, 50, 60, 70, 200], bits=8)
        for ring in (cached, uncached):
            ring.mark_failed(50)
            ring.mark_failed(60)
            ring.mark_failed(70)
        _assert_lookup_identical(cached, uncached, 40, 10)
        assert list(cached.node_ids()) == list(uncached.node_ids())

    def test_all_dead_raises_cleanly(self):
        from repro.errors import EmptyOverlayError

        ring = ChordRing.from_ids([10, 50], bits=8)
        ring.mark_failed(10)
        ring.mark_failed(50)
        with pytest.raises(EmptyOverlayError):
            ring.lookup(40, origin=10)
