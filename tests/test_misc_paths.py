"""Edge-path tests: error hierarchy, rarely-used options, wide hashes."""

import pytest

from repro import errors
from repro.hashing.family import MD4Hash, MixerHash
from repro.sketches.pcsa import PCSASketch


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for name in (
            "ConfigurationError",
            "OverlayError",
            "EmptyOverlayError",
            "NodeNotFoundError",
            "LookupFailedError",
            "SketchError",
            "IncompatibleSketchError",
            "EstimationError",
            "HistogramError",
            "QueryError",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(errors.ConfigurationError, ValueError)

    def test_node_not_found_is_key_error(self):
        assert issubclass(errors.NodeNotFoundError, KeyError)

    def test_catchable_as_family(self):
        with pytest.raises(errors.ReproError):
            raise errors.EstimationError("boom")


class TestWideHashes:
    def test_mixer_128_bits(self):
        h = MixerHash(bits=128, seed=1)
        values = {h(i) for i in range(100)}
        assert len(values) == 100
        assert any(v >= 2**64 for v in values)  # uses the high half
        assert all(v < 2**128 for v in values)

    def test_md4_128_bits(self):
        h = MD4Hash(bits=128, seed=1)
        assert 0 <= h("x") < 2**128


class TestPCSABiasCorrection:
    def test_correction_divides_estimate(self):
        corrected = PCSASketch(m=16, bias_correction=True, hash_family=MixerHash(seed=2))
        raw = PCSASketch(m=16, bias_correction=False, hash_family=MixerHash(seed=2))
        corrected.add_all(range(20_000))
        raw.add_all(range(20_000))
        # Same bitmaps, so the raw estimate is exactly (1 + 0.31/m) larger.
        assert raw.estimate() == pytest.approx(corrected.estimate() * (1 + 0.31 / 16))

    def test_copy_preserves_flag(self):
        sketch = PCSASketch(m=16, bias_correction=False)
        sketch.add_all(range(100))
        assert sketch.copy().bias_correction is False


class TestDocsShipped:
    def test_required_documents_exist(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1]
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/ARCHITECTURE.md"):
            path = root / name
            assert path.exists(), name
            assert path.stat().st_size > 1_000, name

    def test_design_references_real_benchmarks(self):
        import pathlib
        import re

        root = pathlib.Path(__file__).resolve().parents[1]
        design = (root / "DESIGN.md").read_text()
        for match in set(re.findall(r"benchmarks/(test_bench_\w+\.py)", design)):
            assert (root / "benchmarks" / match).exists(), match
