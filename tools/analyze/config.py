"""Configuration for dhslint.

The defaults below mirror the shipped ``[tool.dhslint]`` block in
``pyproject.toml``, so the analyzer behaves identically whether or not a
config file is found (e.g. when checking a standalone snippet in a test
fixture).  ``load_config`` walks upward from the analyzed path looking for
a ``pyproject.toml`` with a ``[tool.dhslint]`` table.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - Python 3.10 without tomli
    try:
        import tomli as tomllib  # type: ignore[import-not-found, no-redef]
    except ImportError:
        tomllib = None  # type: ignore[assignment]

#: The import layering DAG, bottom-up.  A module in layer ``i`` may import
#: from any layer ``j < i`` (and from its own top-level package), never from
#: its own layer's siblings or above.  Mirrors docs/ARCHITECTURE.md §6.
DEFAULT_LAYERS: tuple[tuple[str, ...], ...] = (
    ("errors", "hashing", "obs"),
    ("sim", "sketches"),
    ("overlay", "workloads"),
    ("core",),
    ("histograms", "baselines"),
    ("query",),
    ("experiments",),
    ("cli",),
)


@dataclass(frozen=True)
class Config:
    """Resolved dhslint configuration."""

    #: Root package whose layering the DHS2xx rules enforce.
    package: str = "repro"
    #: Bottom-up layer groups of top-level sub-packages/modules of ``package``.
    layers: tuple[tuple[str, ...], ...] = DEFAULT_LAYERS
    #: Modules allowed to construct RNGs directly (the seed-derivation root).
    determinism_exempt: tuple[str, ...] = ("repro.sim.seeds",)
    #: Packages where float ``==``/``!=`` comparisons are forbidden (DHS301).
    float_strict: tuple[str, ...] = (
        "repro.sketches",
        "repro.core",
        "repro.histograms",
    )
    #: Rule codes disabled project-wide.
    disable: tuple[str, ...] = ()
    #: Path substrings to skip entirely.
    exclude: tuple[str, ...] = field(default_factory=tuple)
    # ------------------------------------------------------------------
    # Whole-program dataflow (DHS8xx) configuration.
    # ------------------------------------------------------------------
    #: Abstract classes whose method calls dispatch to every declared
    #: implementor when the receiver's concrete type is unknown.
    dispatch_roots: tuple[str, ...] = ("repro.overlay.dht.DHTProtocol",)
    #: The picklable trial-cell spec; its ``fn`` arguments are the worker
    #: entry points of the shared-state write analysis (DHS81x).
    trial_spec: str = "repro.sim.parallel.TrialSpec"
    #: Module prefixes whose shared-state writes are sanctioned (the
    #: parallel harness itself and the obs merge machinery).
    worker_exempt: tuple[str, ...] = ("repro.obs", "repro.sim.parallel")
    #: Module prefixes allowed to write node stores directly — everything
    #: else must go through ``DHTProtocol.store``'s write callback.
    store_write_modules: tuple[str, ...] = ("repro.overlay", "repro.core.tuples")
    #: Modules whose public functions must be provably side-effect-free
    #: (the sketch-merge algebra, DHS82x).
    purity_modules: tuple[str, ...] = ("repro.sketches.merge", "repro.sketches.setops")
    #: Packages whose ``estimate`` methods must be side-effect-free.
    estimator_packages: tuple[str, ...] = ("repro.sketches",)

    def layer_of(self, segment: str) -> Optional[int]:
        """Layer index of a top-level segment, or ``None`` if unassigned."""
        for index, group in enumerate(self.layers):
            if segment in group:
                return index
        return None


def _from_table(table: Mapping[str, Any]) -> Config:
    """Build a :class:`Config` from a ``[tool.dhslint]`` TOML table."""
    config = Config()
    if "package" in table:
        config = replace(config, package=str(table["package"]))
    if "layers" in table:
        layers = tuple(tuple(str(name) for name in group) for group in table["layers"])
        config = replace(config, layers=layers)
    if "trial-spec" in table:
        config = replace(config, trial_spec=str(table["trial-spec"]))
    for toml_key, attr in (
        ("determinism-exempt", "determinism_exempt"),
        ("float-strict", "float_strict"),
        ("disable", "disable"),
        ("exclude", "exclude"),
        ("dispatch-roots", "dispatch_roots"),
        ("worker-exempt", "worker_exempt"),
        ("store-write-modules", "store_write_modules"),
        ("purity-modules", "purity_modules"),
        ("estimator-packages", "estimator_packages"),
    ):
        if toml_key in table:
            values: Sequence[Any] = table[toml_key]
            config = replace(config, **{attr: tuple(str(v) for v in values)})
    return config


def load_config(start: Path) -> Config:
    """Find and parse the nearest ``[tool.dhslint]`` above ``start``.

    Falls back to the built-in defaults when no ``pyproject.toml`` declares a
    ``[tool.dhslint]`` table, or when no TOML parser is available (Python
    3.10 without ``tomli``) — the defaults match the shipped configuration.
    """
    if tomllib is None:
        return Config()
    directory = start.resolve()
    if directory.is_file():
        directory = directory.parent
    for candidate in (directory, *directory.parents):
        pyproject = candidate / "pyproject.toml"
        if not pyproject.is_file():
            continue
        with pyproject.open("rb") as handle:
            data = tomllib.load(handle)
        table = data.get("tool", {}).get("dhslint")
        if table is not None:
            return _from_table(table)
        return Config()
    return Config()
