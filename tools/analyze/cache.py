"""Content-hash cache for per-file rule results.

Repeat dhslint runs mostly re-analyze unchanged files; this cache keys
each file's violations by a sha256 of its content so only changed files
are re-parsed and re-checked.  The whole cache is invalidated when the
tool version, the registered rule set, or the resolved configuration
changes (all folded into one fingerprint).  Whole-program dataflow
results are *never* cached — they depend on every file at once.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from tools.analyze.config import Config
from tools.analyze.engine import REGISTRY, TOOL_VERSION, Violation

__all__ = ["AnalysisCache", "DEFAULT_CACHE_PATH"]

DEFAULT_CACHE_PATH = Path(".dhslint_cache.json")


def _fingerprint(config: Config) -> str:
    """Hash of everything that invalidates cached results wholesale."""
    digest = hashlib.sha256()
    digest.update(TOOL_VERSION.encode())
    digest.update(",".join(sorted(REGISTRY)).encode())
    digest.update(repr(config).encode())
    return digest.hexdigest()


class AnalysisCache:
    """Per-file (violations, suppressed) results keyed by content hash."""

    def __init__(self, path: Path, config: Config) -> None:
        self.path = path
        self.fingerprint = _fingerprint(config)
        self._files: Dict[str, dict] = {}
        self._dirty = False
        if path.is_file():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, OSError):
                data = {}
            if data.get("fingerprint") == self.fingerprint:
                files = data.get("files", {})
                if isinstance(files, dict):
                    self._files = files

    @staticmethod
    def _content_hash(source: str) -> str:
        return hashlib.sha256(source.encode("utf-8")).hexdigest()

    def lookup(
        self, path: Path, source: str
    ) -> Optional[Tuple[List[Violation], int]]:
        """Cached ``(violations, suppressed)`` if content is unchanged."""
        entry = self._files.get(str(path))
        if entry is None or entry.get("hash") != self._content_hash(source):
            return None
        try:
            violations = [Violation(**v) for v in entry["violations"]]
            suppressed = int(entry["suppressed"])
        except (KeyError, TypeError, ValueError):
            return None
        return violations, suppressed

    def store(
        self, path: Path, source: str, violations: List[Violation], suppressed: int
    ) -> None:
        """Record fresh results for one file."""
        self._files[str(path)] = {
            "hash": self._content_hash(source),
            "violations": [asdict(v) for v in violations],
            "suppressed": suppressed,
        }
        self._dirty = True

    def flush(self) -> None:
        """Write the cache back (atomically) if anything changed."""
        if not self._dirty:
            return
        payload = json.dumps(
            {"fingerprint": self.fingerprint, "files": self._files}, sort_keys=True
        )
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        try:
            tmp.write_text(payload, encoding="utf-8")
            tmp.replace(self.path)
        except OSError:  # pragma: no cover - read-only checkout: run uncached
            return
        self._dirty = False
