"""dhslint — AST-based invariant checker for the DHS reproduction.

The test suite can only *sample* the invariants this codebase rests on:
bit-for-bit deterministic replay from one master seed, a strict import
layering DAG, and numerically careful estimator code.  ``dhslint`` checks
whole classes of violations statically, so refactors can move fast without
silently breaking determinism or the architecture.

Run it as::

    python -m tools.analyze [--format text|json] [paths...]

Rules are small :class:`~tools.analyze.engine.Rule` subclasses registered
by code (``DHS101`` ...).  Per-line suppressions use
``# dhslint: disable=DHS101`` (comma-separated codes, or ``all``); the
project-wide configuration lives in ``[tool.dhslint]`` in ``pyproject.toml``.
See ``docs/STATIC_ANALYSIS.md`` for the full rule catalogue.
"""

from __future__ import annotations

from tools.analyze.config import Config, load_config
from tools.analyze.engine import (
    PROJECT_REGISTRY,
    REGISTRY,
    FileContext,
    ProjectRule,
    Report,
    Rule,
    Violation,
    analyze_file,
    analyze_paths,
)

# Importing the rules package registers every per-file rule class.  The
# whole-program DHS8xx rules register when ``tools.analyze.dataflow`` is
# imported (lazily, on the first ``dataflow=True`` run).
from tools.analyze import rules as _rules  # noqa: F401

__all__ = [
    "Config",
    "FileContext",
    "PROJECT_REGISTRY",
    "ProjectRule",
    "REGISTRY",
    "Report",
    "Rule",
    "Violation",
    "analyze_file",
    "analyze_paths",
    "load_config",
]
