"""Command-line front end: ``python -m tools.analyze [options] [paths...]``.

Exit status: 0 clean, 1 violations (or waiver problems) found, 2
usage/parse errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from tools.analyze.cache import DEFAULT_CACHE_PATH, AnalysisCache
from tools.analyze.config import load_config
from tools.analyze.engine import PROJECT_REGISTRY, REGISTRY, analyze_paths
from tools.analyze.output import FORMATS, render
from tools.analyze.waivers import load_waivers

DEFAULT_WAIVER_PATH = Path(".dhslint-waivers")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyze",
        description="dhslint: AST-based invariant checker for the DHS stack.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=tuple(FORMATS),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--dataflow",
        action="store_true",
        help="additionally run the whole-program dataflow rules (DHS8xx)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not update the per-file result cache",
    )
    parser.add_argument(
        "--cache-file",
        metavar="FILE",
        default=str(DEFAULT_CACHE_PATH),
        help=f"cache location (default: {DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--waivers",
        metavar="FILE",
        default=str(DEFAULT_WAIVER_PATH),
        help=(
            "waiver file acknowledging known findings with expiry dates "
            f"(default: {DEFAULT_WAIVER_PATH}, ignored when absent)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _render_rules() -> str:
    # Importing the dataflow package registers the DHS8xx project rules.
    import tools.analyze.dataflow  # noqa: F401

    lines = []
    catalogue = {**REGISTRY, **PROJECT_REGISTRY}
    for code, rule_cls in sorted(catalogue.items()):
        scope = " [project]" if code in PROJECT_REGISTRY else ""
        lines.append(f"{code} ({rule_cls.name}){scope}")
        lines.append(f"    {rule_cls.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_render_rules())
        return 0
    paths: List[Path] = []
    for raw in args.paths:
        path = Path(raw)
        if not path.exists():
            print(f"dhslint: no such path: {raw}", file=sys.stderr)
            return 2
        paths.append(path)
    config = load_config(paths[0])
    cache = None if args.no_cache else AnalysisCache(Path(args.cache_file), config)
    waiver_path = Path(args.waivers)
    waivers = load_waivers(waiver_path) if waiver_path.is_file() else None
    report = analyze_paths(
        paths, config, dataflow=args.dataflow, cache=cache, waivers=waivers
    )
    rendered = render(report, args.format)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
        # Keep the one-line summary on stdout so CI logs stay readable.
        print(
            f"dhslint: wrote {args.format} report to {args.output} "
            f"({len(report.violations)} violation(s))"
        )
    else:
        print(rendered)
    if report.errors:
        return 2
    return 1 if report.violations or report.waiver_errors else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
