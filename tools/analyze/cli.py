"""Command-line front end: ``python -m tools.analyze [options] [paths...]``.

Exit status: 0 clean, 1 violations found, 2 usage/parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from tools.analyze.config import load_config
from tools.analyze.engine import REGISTRY, Report, analyze_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyze",
        description="dhslint: AST-based invariant checker for the DHS stack.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _render_text(report: Report) -> str:
    lines = [violation.render() for violation in report.violations]
    lines.extend(report.errors)
    counts = report.counts_by_code
    summary = ", ".join(f"{code}×{n}" for code, n in counts.items()) or "clean"
    lines.append(
        f"dhslint: {len(report.violations)} violation(s) "
        f"[{summary}], {report.suppressed} suppressed, "
        f"{report.files} file(s) checked"
    )
    return "\n".join(lines)


def _render_json(report: Report) -> str:
    payload = {
        "violations": [
            {
                "code": v.code,
                "message": v.message,
                "path": v.path,
                "line": v.line,
                "col": v.col,
            }
            for v in report.violations
        ],
        "errors": report.errors,
        "counts": report.counts_by_code,
        "suppressed": report.suppressed,
        "files": report.files,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _render_rules() -> str:
    lines = []
    for code, rule_cls in sorted(REGISTRY.items()):
        lines.append(f"{code} ({rule_cls.name})")
        lines.append(f"    {rule_cls.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_render_rules())
        return 0
    paths: List[Path] = []
    for raw in args.paths:
        path = Path(raw)
        if not path.exists():
            print(f"dhslint: no such path: {raw}", file=sys.stderr)
            return 2
        paths.append(path)
    config = load_config(paths[0])
    report = analyze_paths(paths, config)
    print(_render_text(report) if args.format == "text" else _render_json(report))
    if report.errors:
        return 2
    return 1 if report.violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
