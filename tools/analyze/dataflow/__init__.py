"""Whole-program dataflow analysis for dhslint (the DHS8xx rules).

Importing this package registers the project rules:

* :mod:`tools.analyze.dataflow.taint` — RNG-taint (DHS801–DHS803);
* :mod:`tools.analyze.dataflow.shared_state` — worker-reachable
  shared-state writes (DHS811–DHS813);
* :mod:`tools.analyze.dataflow.purity` — purity inference (DHS821–DHS822).

The shared infrastructure lives in :mod:`~tools.analyze.dataflow.symbols`
(project symbol table), :mod:`~tools.analyze.dataflow.callgraph`
(conservative call graph), and :mod:`~tools.analyze.dataflow.project`
(the memoizing ``ProjectContext`` handed to every rule).
"""

from tools.analyze.dataflow.project import ProjectContext, build_project

# Importing the pass modules registers their ProjectRule subclasses.
from tools.analyze.dataflow import purity as _purity  # noqa: F401
from tools.analyze.dataflow import shared_state as _shared_state  # noqa: F401
from tools.analyze.dataflow import taint as _taint  # noqa: F401

__all__ = ["ProjectContext", "build_project"]
