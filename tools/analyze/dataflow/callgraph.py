"""Project call graph with conservative dynamic dispatch.

Edges are resolved lexically from each function body:

* plain calls through import aliases and re-exports (``union_all(...)``
  after ``from repro.sketches import union_all``);
* constructor calls (``ChordRing(...)`` edges to ``ChordRing.__init__``);
* ``self.method(...)`` through the project MRO, *plus* every subclass
  override — a base-class helper calling an abstract hook reaches every
  implementation;
* receiver-typed calls where the receiver's class is known from a
  parameter annotation or a constructor/classmethod assignment
  (``ring = ChordRing.build(...)``; ``dht: DHTProtocol``);
* untyped method calls whose name belongs to a configured dispatch root
  hierarchy (``DHTProtocol``) fan out to every declared implementor.

Unresolvable calls (callables passed as values, stdlib) produce no
edges; the passes that need soundness treat those conservatively at
their own level.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.analyze.config import Config
from tools.analyze.dataflow.symbols import FunctionInfo, SymbolTable, _dotted

__all__ = ["CallGraph", "CallResolver", "build_callgraph"]


@dataclass
class CallGraph:
    """Caller -> callees with the first call site of each edge."""

    edges: Dict[str, Dict[str, Tuple[int, int]]] = field(default_factory=dict)

    def add(self, caller: str, callee: str, site: Tuple[int, int]) -> None:
        self.edges.setdefault(caller, {}).setdefault(callee, site)

    def callees(self, caller: str) -> Dict[str, Tuple[int, int]]:
        return self.edges.get(caller, {})

    def edge_list(self) -> List[Tuple[str, str]]:
        """Sorted ``(caller, callee)`` pairs (golden-test friendly)."""
        return sorted(
            (caller, callee)
            for caller, callees in self.edges.items()
            for callee in callees
        )

    def reachable(self, roots: Set[str]) -> Set[str]:
        """Transitive closure of ``roots`` over the edges."""
        seen = set(roots)
        frontier = list(roots)
        while frontier:
            current = frontier.pop()
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen

    @property
    def edge_count(self) -> int:
        return sum(len(callees) for callees in self.edges.values())


class CallResolver:
    """Resolve one function's call expressions to project definitions."""

    def __init__(self, symbols: SymbolTable, config: Config, fn: FunctionInfo) -> None:
        self.symbols = symbols
        self.config = config
        self.fn = fn
        self.receiver = fn.receiver_name()
        #: Local variable -> class qualname, from annotations/constructors.
        self.local_types: Dict[str, str] = {}
        self._collect_param_types()
        self._collect_local_types()

    # ------------------------------------------------------------------
    # Local type environment.
    # ------------------------------------------------------------------
    def _class_of_annotation(self, annotation: Optional[ast.expr]) -> Optional[str]:
        if annotation is None:
            return None
        node = annotation
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):  # Optional[X] / list[X]
            return None
        resolved = self.symbols.resolve_expr(self.fn.module, node)
        if resolved is not None and resolved in self.symbols.classes:
            return resolved
        return None

    def _collect_param_types(self) -> None:
        args = self.fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            cls = self._class_of_annotation(arg.annotation)
            if cls is not None:
                self.local_types[arg.arg] = cls

    def _collect_local_types(self) -> None:
        for node in ast.walk(self.fn.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name) or not isinstance(node.value, ast.Call):
                continue
            resolved = self.symbols.resolve_expr(self.fn.module, node.value.func)
            if resolved is None:
                continue
            resolved = self.symbols.canonical(resolved)
            if resolved in self.symbols.classes:
                self.local_types[target.id] = resolved
            else:
                # ``ring = ChordRing.build(...)``: a classmethod of a
                # project class is assumed to return an instance.
                owner = resolved.rsplit(".", 1)[0]
                if owner in self.symbols.classes:
                    fn = self.symbols.functions.get(resolved)
                    if fn is not None and fn.is_method:
                        self.local_types[target.id] = owner

    # ------------------------------------------------------------------
    # Call resolution.
    # ------------------------------------------------------------------
    def _method_with_overrides(
        self, class_qualname: str, name: str
    ) -> List[FunctionInfo]:
        out: List[FunctionInfo] = []
        base = self.symbols.mro_method(class_qualname, name)
        if base is not None:
            out.append(base)
        for override in self.symbols.implementations(class_qualname, name):
            if override not in out:
                out.append(override)
        return out

    def resolve_call(self, call: ast.Call) -> List[FunctionInfo]:
        """Project definitions a call expression may reach (possibly empty)."""
        func = call.func
        # Method-style call with a resolvable receiver type.
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            root = func.value.id
            method = func.attr
            if root == self.receiver and self.fn.cls is not None:
                resolved = self._method_with_overrides(self.fn.cls, method)
                if resolved:
                    return resolved
            if root in self.local_types:
                resolved = self._method_with_overrides(self.local_types[root], method)
                if resolved:
                    return resolved
        dotted = _dotted(func)
        if dotted is not None:
            qualname = self.symbols.canonical_from(self.fn.module, dotted)
            if qualname is not None:
                qualname = self.symbols.canonical(qualname)
                if qualname in self.symbols.functions:
                    return [self.symbols.functions[qualname]]
                if qualname in self.symbols.classes:
                    init = self.symbols.mro_method(qualname, "__init__")
                    return [init] if init is not None else []
        # Untyped method call: conservative dispatch-root fan-out.
        if isinstance(func, ast.Attribute):
            dispatched = self.symbols.dispatch_method(
                func.attr, self.config.dispatch_roots
            )
            if dispatched:
                return dispatched
        return []

    def receiver_root(self, call: ast.Call) -> Optional[str]:
        """Root name of a method call's receiver (``x`` in ``x.a.b(...)``)."""
        node = call.func
        if not isinstance(node, ast.Attribute):
            return None
        while isinstance(node, ast.Attribute):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None


def iter_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Every call expression under ``node`` (nested defs included)."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def build_callgraph(symbols: SymbolTable, config: Config) -> CallGraph:
    """Resolve every call in every project function into a graph."""
    graph = CallGraph()
    for fn in symbols.functions.values():
        resolver = CallResolver(symbols, config, fn)
        for call in iter_calls(fn.node):
            for callee in resolver.resolve_call(call):
                graph.add(
                    fn.qualname, callee.qualname, (call.lineno, call.col_offset)
                )
    return graph
