"""Bottom-up purity inference over the call graph (DHS821–DHS822).

The sketch-merge algebra (``repro.sketches.merge`` / ``setops``) and
every estimator callable must be side-effect-free: parallel trial
workers and the self-healing replay path both assume that merging or
estimating twice is harmless.  This pass infers an *effect summary* for
every project function::

    writes_global   mutates module-level state (or obj rooted at one)
    writes_params   mutates an argument (incl. a method mutating ``self``
                    when the receiver at the call site is a parameter)
    writes_self     method mutates its own receiver
    io              print/open/input or file-handle writes

Direct effects are read off each body; call-site effects are inherited
through the call graph to a fixpoint, *mapped through the receiver*: a
callee that ``writes_self`` is harmless when the receiver is a fresh
local (``result = first.copy(); result.merge(s)``), a parameter
mutation when the receiver is a caller parameter, and so on.

* **DHS821** — a purity-required function has a *direct* impure effect;
* **DHS822** — it inherits one through a call chain (chain is reported).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

from tools.analyze.engine import ProjectRule, Violation, register_project
from tools.analyze.dataflow.callgraph import CallResolver, iter_calls
from tools.analyze.dataflow.symbols import FunctionInfo, _dotted
from tools.analyze.dataflow.taint import module_in

if TYPE_CHECKING:  # pragma: no cover - typing only
    from tools.analyze.dataflow.project import ProjectContext

__all__ = ["Effect", "EffectAnalysis", "MUTATOR_METHODS"]

WRITES_GLOBAL = "writes_global"
WRITES_PARAMS = "writes_params"
WRITES_SELF = "writes_self"
IO = "io"

#: Effect kinds that make a purity-required function impure.
IMPURE_KINDS = (WRITES_GLOBAL, IO, WRITES_PARAMS, WRITES_SELF)

#: Method names that mutate their receiver (name-based fallback, used only
#: when the call cannot be resolved to a project definition).
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "popleft",
        "clear",
        "insert",
        "remove",
        "discard",
        "sort",
        "reverse",
        "write",
        "writelines",
    }
)

#: Bare call names with observable I/O.
IO_CALLS = frozenset({"print", "open", "input"})


@dataclass(frozen=True)
class Effect:
    """First witness of one effect kind in one function."""

    kind: str
    line: int
    col: int
    detail: str
    #: Callee qualname when the effect is inherited through a call.
    via: Optional[str] = None


def _local_names(fn: FunctionInfo) -> Set[str]:
    """Names bound locally: params, assignment/loop/with targets."""
    names: Set[str] = set()
    args = fn.node.args
    for arg in [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *( [args.vararg] if args.vararg else [] ),
        *( [args.kwarg] if args.kwarg else [] ),
    ]:
        names.add(arg.arg)
    for node in ast.walk(fn.node):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.For, ast.AsyncFor)):
            targets = [node.target]
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            targets = [
                item.optional_vars for item in node.items if item.optional_vars
            ]
        elif isinstance(node, ast.comprehension):
            targets = [node.target]
        for target in targets:
            names.update(_binding_names(target))
    return names


def _binding_names(target: ast.expr) -> Iterable[str]:
    """Names *bound* by an assignment target (``x[...] = ...`` binds none)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _binding_names(element)
    elif isinstance(target, ast.Starred):
        yield from _binding_names(target.value)


def _root_name(node: ast.expr) -> Optional[str]:
    """Root ``Name`` of an attribute/subscript chain, else ``None``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class EffectAnalysis:
    """Effect summaries for every function, plus DHS82x violations."""

    def __init__(self, project: "ProjectContext") -> None:
        self.project = project
        #: Function qualname -> {kind -> first witness}.
        self.effects: Dict[str, Dict[str, Effect]] = {}
        #: Qualnames required to be pure, with the reason they are required.
        self.required: Dict[str, str] = {}
        self.violations: Dict[str, List[Violation]] = {"DHS821": [], "DHS822": []}
        self._resolvers: Dict[str, CallResolver] = {}
        self._run()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        symbols = self.project.symbols
        config = self.project.config
        for fn in symbols.functions.values():
            self._resolvers[fn.qualname] = CallResolver(symbols, config, fn)
            self.effects[fn.qualname] = self._direct_effects(fn)
        # Inherit call-site effects to a fixpoint (monotone: effects only grow).
        for _ in range(len(symbols.functions) + 1):
            if not self._propagate_once():
                break
        self._collect_required()
        for qualname, reason in sorted(self.required.items()):
            self._emit(qualname, reason)

    # ------------------------------------------------------------------
    # Direct effects.
    # ------------------------------------------------------------------
    def _classify_root(self, fn: FunctionInfo, root: Optional[str], locals_: Set[str]) -> Optional[str]:
        """Effect kind of mutating an object rooted at ``root``."""
        if root is None:
            return None
        receiver = fn.receiver_name()
        if root == receiver:
            return WRITES_SELF
        if root in self._param_names(fn):
            return WRITES_PARAMS
        if root in locals_:
            return None  # fresh local: invisible to callers
        module = self.project.symbols.modules.get(fn.module)
        if module is not None and (
            root in module.variables or root in module.imports
        ):
            return WRITES_GLOBAL
        return None

    @staticmethod
    def _param_names(fn: FunctionInfo) -> Set[str]:
        args = fn.node.args
        names = {a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]}
        receiver = fn.receiver_name()
        if receiver is not None:
            names.discard(receiver)
        return names

    def _direct_effects(self, fn: FunctionInfo) -> Dict[str, Effect]:
        out: Dict[str, Effect] = {}
        locals_ = _local_names(fn)
        declared_global: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)

        def add(kind: Optional[str], node: ast.AST, detail: str) -> None:
            if kind is not None and kind not in out:
                out[kind] = Effect(
                    kind=kind,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    detail=detail,
                )

        for node in ast.walk(fn.node):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in declared_global:
                        add(WRITES_GLOBAL, node, f"assigns global {target.id!r}")
                elif isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = _root_name(target)
                    kind = self._classify_root(fn, root, locals_)
                    add(kind, node, f"mutates {root!r}")
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        if isinstance(element, (ast.Attribute, ast.Subscript)):
                            root = _root_name(element)
                            add(
                                self._classify_root(fn, root, locals_),
                                node,
                                f"mutates {root!r}",
                            )
            if isinstance(node, ast.Call):
                bare = None
                if isinstance(node.func, ast.Name):
                    bare = node.func.id
                if bare in IO_CALLS:
                    add(IO, node, f"calls {bare}()")
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATOR_METHODS
                    and not self._resolvers[fn.qualname].resolve_call(node)
                ):
                    root = _root_name(node.func.value)
                    kind = self._classify_root(fn, root, locals_)
                    add(kind, node, f"calls {root!r}.{node.func.attr}(...)")
        return out

    # ------------------------------------------------------------------
    # Call-site inheritance.
    # ------------------------------------------------------------------
    def _propagate_once(self) -> bool:
        changed = False
        for fn in self.project.symbols.functions.values():
            mine = self.effects[fn.qualname]
            resolver = self._resolvers[fn.qualname]
            locals_ = _local_names(fn)
            for call in iter_calls(fn.node):
                for callee in resolver.resolve_call(call):
                    if callee.qualname == fn.qualname:
                        continue
                    theirs = self.effects.get(callee.qualname, {})
                    for kind, effect in theirs.items():
                        mapped = self._map_kind(fn, call, callee, kind, locals_)
                        if mapped is not None and mapped not in mine:
                            mine[mapped] = Effect(
                                kind=mapped,
                                line=call.lineno,
                                col=call.col_offset,
                                detail=effect.detail,
                                via=callee.qualname,
                            )
                            changed = True
        return changed

    def _map_kind(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        callee: FunctionInfo,
        kind: str,
        locals_: Set[str],
    ) -> Optional[str]:
        """Translate a callee effect into the caller's frame."""
        if kind in (WRITES_GLOBAL, IO):
            return kind
        resolver = self._resolvers[fn.qualname]
        if kind == WRITES_SELF:
            # Constructor call: the mutated receiver is the fresh instance.
            if not isinstance(call.func, ast.Attribute):
                return None
            root = resolver.receiver_root(call)
            return self._classify_root(fn, root, locals_)
        if kind == WRITES_PARAMS:
            # Impure only if one of *our* params (or self) is handed over.
            receiver = fn.receiver_name()
            params = self._param_names(fn)
            for arg in [*call.args, *[k.value for k in call.keywords]]:
                root = _root_name(arg) if isinstance(
                    arg, (ast.Name, ast.Attribute, ast.Subscript)
                ) else None
                if root is None:
                    continue
                if root == receiver:
                    return WRITES_SELF
                if root in params:
                    return WRITES_PARAMS
            return None
        return None

    # ------------------------------------------------------------------
    # Requirements and emission.
    # ------------------------------------------------------------------
    def _collect_required(self) -> None:
        config = self.project.config
        for fn in self.project.symbols.functions.values():
            if fn.name.startswith("_") and fn.name.endswith("__"):
                continue
            if module_in(fn.module, config.purity_modules):
                self.required[fn.qualname] = (
                    f"defined in purity-required module {fn.module}"
                )
            elif (
                fn.is_method
                and fn.name.startswith("estimate")
                and module_in(fn.module, config.estimator_packages)
            ):
                self.required[fn.qualname] = "estimator callable"

    def _chain(self, qualname: str, kind: str) -> List[str]:
        chain = [qualname]
        seen = {qualname}
        current = qualname
        while len(chain) < 8:
            effect = self.effects.get(current, {}).get(kind)
            if effect is None or effect.via is None or effect.via in seen:
                break
            chain.append(effect.via)
            seen.add(effect.via)
            current = effect.via
        return chain

    def _emit(self, qualname: str, reason: str) -> None:
        fn = self.project.symbols.functions[qualname]
        module = self.project.symbols.modules.get(fn.module)
        path = str(module.ctx.path) if module is not None else fn.module
        mine = self.effects.get(qualname, {})
        for kind in IMPURE_KINDS:
            effect = mine.get(kind)
            if effect is None:
                continue
            if effect.via is None:
                self.violations["DHS821"].append(
                    Violation(
                        code="DHS821",
                        message=(
                            f"{qualname} must be side-effect-free ({reason}) "
                            f"but {effect.detail} [{kind}]"
                        ),
                        path=path,
                        line=effect.line,
                        col=effect.col,
                    )
                )
            else:
                chain = " -> ".join(self._chain(qualname, kind)[1:])
                self.violations["DHS822"].append(
                    Violation(
                        code="DHS822",
                        message=(
                            f"{qualname} must be side-effect-free ({reason}) "
                            f"but reaches an impure callee via {chain} "
                            f"({effect.detail}) [{kind}]"
                        ),
                        path=path,
                        line=effect.line,
                        col=effect.col,
                    )
                )


@register_project
class DirectImpurityRule(ProjectRule):
    code = "DHS821"
    name = "purity-direct-effect"
    rationale = (
        "Merge-algebra functions and estimator callables are re-executed by "
        "the parallel harness and the self-healing replay path; a direct "
        "side effect makes re-execution observable."
    )

    def check_project(self, project: "ProjectContext") -> Iterable[Violation]:
        return project.effects().violations["DHS821"]


@register_project
class ChainImpurityRule(ProjectRule):
    code = "DHS822"
    name = "purity-chain-effect"
    rationale = (
        "Purity is compositional: a required-pure function inheriting a "
        "side effect through its call chain is as unsafe as writing it "
        "directly — the chain witness shows where."
    )

    def check_project(self, project: "ProjectContext") -> Iterable[Violation]:
        return project.effects().violations["DHS822"]
