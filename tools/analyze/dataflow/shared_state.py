"""Worker-reachability shared-state write analysis (DHS811–DHS813).

``run_trials`` fans trial cells out to worker processes; results come
back only through the sanctioned channels (returned snapshots merged by
``MetricsRegistry.merge_snapshot``, node stores owned by the overlay).
Any *other* mutation of shared-looking state inside worker-reachable
code is a bug factory: it silently works under ``DHS_JOBS=1`` and
diverges under parallel execution.

Worker entry points (roots) are discovered structurally: every ``fn=``
argument of a ``TrialSpec(...)`` construction, resolved through the
symbol table.  The reachable set is the call-graph closure of those
roots.  Within it (minus the sanctioned ``worker_exempt`` modules):

* **DHS811** — a direct module-global mutation;
* **DHS812** — a node-store write (``*.store[...] = ...`` or a mutator
  call on ``*.store``) outside the ``store_write_modules`` owners;
* **DHS813** — a direct mutation of obs internals (an object imported
  from ``repro.obs``) instead of snapshot merging.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set

from tools.analyze.engine import ProjectRule, Violation, register_project
from tools.analyze.dataflow.callgraph import CallResolver, iter_calls
from tools.analyze.dataflow.purity import (
    MUTATOR_METHODS,
    WRITES_GLOBAL,
    _root_name,
)
from tools.analyze.dataflow.symbols import FunctionInfo, _dotted
from tools.analyze.dataflow.taint import module_in

if TYPE_CHECKING:  # pragma: no cover - typing only
    from tools.analyze.dataflow.project import ProjectContext

__all__ = ["WorkerAnalysis"]

#: Package prefix owning the observability internals guarded by DHS813.
OBS_PREFIX = "repro.obs"


class WorkerAnalysis:
    """Worker roots, reachable set, and DHS81x violations."""

    def __init__(self, project: "ProjectContext") -> None:
        self.project = project
        #: Worker entry points: resolved ``fn=`` arguments of TrialSpec calls.
        self.roots: Set[str] = set()
        self.reachable: Set[str] = set()
        self.violations: Dict[str, List[Violation]] = {
            "DHS811": [],
            "DHS812": [],
            "DHS813": [],
        }
        self._run()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        self._find_roots()
        self.reachable = self.project.graph.reachable(self.roots)
        exempt = self.project.config.worker_exempt
        for qualname in sorted(self.reachable):
            fn = self.project.symbols.functions.get(qualname)
            if fn is None or module_in(fn.module, exempt):
                continue
            self._check_global_writes(fn)
            self._check_store_and_obs_writes(fn)

    def _find_roots(self) -> None:
        symbols = self.project.symbols
        config = self.project.config
        for fn in symbols.functions.values():
            for call in iter_calls(fn.node):
                dotted = _dotted(call.func)
                if dotted is None:
                    continue
                canonical = symbols.canonical_from(fn.module, dotted)
                if canonical != config.trial_spec:
                    continue
                for keyword in call.keywords:
                    if keyword.arg != "fn":
                        continue
                    target = symbols.resolve_expr(fn.module, keyword.value)
                    if target is not None and target in symbols.functions:
                        self.roots.add(target)

    # ------------------------------------------------------------------
    def _check_global_writes(self, fn: FunctionInfo) -> None:
        effect = self.project.effects().effects.get(fn.qualname, {}).get(WRITES_GLOBAL)
        if effect is None or effect.via is not None:
            return  # chain writes are reported at the function that writes
        path = self._path(fn)
        self.violations["DHS811"].append(
            Violation(
                code="DHS811",
                message=(
                    f"worker-reachable {fn.qualname} {effect.detail}: workers "
                    "must return snapshots (merge via "
                    "MetricsRegistry.merge_snapshot), not mutate shared state"
                ),
                path=path,
                line=effect.line,
                col=effect.col,
            )
        )

    def _check_store_and_obs_writes(self, fn: FunctionInfo) -> None:
        config = self.project.config
        path = self._path(fn)
        store_ok = module_in(fn.module, config.store_write_modules)
        resolver = CallResolver(self.project.symbols, config, fn)
        reported: Set[int] = set()
        # Writes inside a callback handed to the overlay ``*.store(key, fn)``
        # API are the sanctioned route — the overlay invokes the callback on
        # the owning node with replication/accounting applied.
        sanctioned = _store_callback_nodes(fn.node)

        def report(code: str, node: ast.AST, message: str) -> None:
            if id(node) in reported:
                return
            reported.add(id(node))
            self.violations[code].append(
                Violation(
                    code=code,
                    message=message,
                    path=path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                )
            )

        for node in ast.walk(fn.node):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            for target in targets:
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                if not store_ok and id(node) not in sanctioned and _touches_store(target):
                    report(
                        "DHS812",
                        node,
                        f"{fn.qualname} writes a node store directly — only "
                        f"{'/'.join(config.store_write_modules)} own store "
                        "writes; go through the overlay store API",
                    )
                obs_target = self._obs_binding(fn, target)
                if obs_target is not None:
                    report(
                        "DHS813",
                        node,
                        f"{fn.qualname} mutates obs internals ({obs_target}) "
                        "directly — use MetricsRegistry.merge_snapshot / the "
                        "tracer API",
                    )
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr not in MUTATOR_METHODS:
                    continue
                if resolver.resolve_call(node):
                    continue  # resolved project method: effects pass covers it
                receiver = node.func.value
                if not store_ok and id(node) not in sanctioned and _touches_store(receiver):
                    report(
                        "DHS812",
                        node,
                        f"{fn.qualname} calls .{node.func.attr}(...) on a node "
                        "store — only "
                        f"{'/'.join(config.store_write_modules)} own store "
                        "writes; go through the overlay store API",
                    )
                obs_target = self._obs_binding(fn, receiver)
                if obs_target is not None:
                    report(
                        "DHS813",
                        node,
                        f"{fn.qualname} calls .{node.func.attr}(...) on obs "
                        f"internals ({obs_target}) — use "
                        "MetricsRegistry.merge_snapshot / the tracer API",
                    )

    def _obs_binding(self, fn: FunctionInfo, node: ast.expr) -> Optional[str]:
        """Canonical name when ``node`` is rooted at an obs-owned binding."""
        root = _root_name(node)
        if root is None:
            return None
        canonical = self.project.symbols.canonical_from(fn.module, root)
        if canonical is not None and (
            canonical == OBS_PREFIX or canonical.startswith(OBS_PREFIX + ".")
        ):
            return canonical
        return None

    def _path(self, fn: FunctionInfo) -> str:
        module = self.project.symbols.modules.get(fn.module)
        return str(module.ctx.path) if module is not None else fn.module


def _store_callback_nodes(fn_node: ast.AST) -> Set[int]:
    """AST node ids inside callbacks passed to an overlay ``*.store(...)`` call.

    The write path of the baselines/query layers is
    ``dht.store(key, write)`` with a local ``def write(node): ...``; the
    body of such a callback is the sanctioned store-write site.
    """
    callback_names: Set[str] = set()
    for node in ast.walk(fn_node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "store"
        ):
            for arg in [*node.args, *[k.value for k in node.keywords]]:
                if isinstance(arg, ast.Name):
                    callback_names.add(arg.id)
    sanctioned: Set[int] = set()
    for node in ast.walk(fn_node):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not fn_node
            and node.name in callback_names
        ):
            for inner in ast.walk(node):
                sanctioned.add(id(inner))
    return sanctioned


def _touches_store(node: ast.expr) -> bool:
    """Whether an attribute/subscript chain passes through ``.store``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute) and node.attr == "store":
            return True
        node = node.value
    return False


@register_project
class GlobalWriteRule(ProjectRule):
    code = "DHS811"
    name = "worker-global-write"
    rationale = (
        "Module-global mutations inside worker-reachable code only apply in "
        "the worker's address space: results silently diverge between "
        "DHS_JOBS=1 and parallel runs."
    )

    def check_project(self, project: "ProjectContext") -> Iterable[Violation]:
        return project.worker().violations["DHS811"]


@register_project
class StoreWriteRule(ProjectRule):
    code = "DHS812"
    name = "worker-store-write"
    rationale = (
        "Node stores are owned by the overlay layer; out-of-API writes from "
        "worker-reachable code bypass replication and tuple accounting."
    )

    def check_project(self, project: "ProjectContext") -> Iterable[Violation]:
        return project.worker().violations["DHS812"]


@register_project
class ObsWriteRule(ProjectRule):
    code = "DHS813"
    name = "worker-obs-write"
    rationale = (
        "Metrics and traces cross process boundaries as immutable snapshots "
        "merged by MetricsRegistry.merge_snapshot; direct mutation of obs "
        "internals from worker code is lost or double-counted."
    )

    def check_project(self, project: "ProjectContext") -> Iterable[Violation]:
        return project.worker().violations["DHS813"]
