"""RNG-taint analysis (DHS801–DHS803).

The determinism contract says every random stream must trace back to the
experiment seed: RNGs are built by ``repro.sim.seeds.rng_for`` (or from
a value derived via ``derive_seed``/an explicit seed parameter), never
from ambient entropy.  The per-file DHS101 rule catches direct
``random.random()`` calls; this pass catches the interprocedural leaks
it cannot see — an unseeded RNG constructed in one function and handed
to another, or a helper that *returns* an unseeded RNG.

Abstract domain per value::

    SEED     derived from the experiment seed (derive_seed result,
             seed-named parameter, arithmetic over a SEED)
    RNG_OK   an RNG constructed from a SEED (or rng_for, or an rng-named
             parameter — the caller is responsible for its seeding)
    RNG_BAD  an RNG constructed without a SEED (ambient entropy)
    OTHER    anything else

Function return summaries are computed to a fixpoint over the call
graph, then each function body is swept once to emit:

* **DHS801** — RNG constructed without a seed-derived argument;
* **DHS802** — an RNG_BAD value crossing a call boundary (returned by a
  callee, or passed into an rng-parameter);
* **DHS803** — seed/RNG kind mismatch at a call boundary (a SEED passed
  where an RNG is expected, or vice versa).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

from tools.analyze.engine import ProjectRule, Violation, register_project
from tools.analyze.dataflow.callgraph import CallResolver, iter_calls
from tools.analyze.dataflow.symbols import FunctionInfo, _dotted

if TYPE_CHECKING:  # pragma: no cover - typing only
    from tools.analyze.dataflow.project import ProjectContext

__all__ = ["TaintAnalysis"]

SEED = "SEED"
RNG_OK = "RNG_OK"
RNG_BAD = "RNG_BAD"
OTHER = "OTHER"

#: Canonical names that construct an RNG from their first/seed argument.
RNG_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
    }
)

#: ``random.SystemRandom`` is entropy-backed by design — never seedable.
NEVER_SEEDABLE = frozenset({"random.SystemRandom"})


def is_seedish(name: str) -> bool:
    return "seed" in name.lower()


def is_rngish(name: str) -> bool:
    stripped = name.lower().strip("_")
    return stripped == "rng" or stripped.endswith("_rng") or stripped.startswith("rng_")


def join(a: str, b: str) -> str:
    if a == b:
        return a
    if RNG_BAD in (a, b):
        return RNG_BAD
    return OTHER


def module_in(module: Optional[str], prefixes: Iterable[str]) -> bool:
    if module is None:
        return False
    return any(module == p or module.startswith(p + ".") for p in prefixes)


@dataclass
class ConstructionSite:
    """One RNG constructor call and the taint of its seed argument."""

    module: str
    path: str
    node: ast.Call
    constructor: str
    seed_taint: Optional[str]  # None when called with no seed at all


class _Evaluator:
    """Flow-insensitive taint environment for one function (or module) body."""

    def __init__(
        self,
        analysis: "TaintAnalysis",
        module: str,
        fn: Optional[FunctionInfo],
        resolver: Optional[CallResolver],
    ) -> None:
        self.analysis = analysis
        self.module = module
        self.fn = fn
        self.resolver = resolver
        self.env: Dict[str, str] = {}
        self.receiver = fn.receiver_name() if fn is not None else None
        if fn is not None:
            self._seed_params()

    def _seed_params(self) -> None:
        assert self.fn is not None
        args = self.fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if is_seedish(arg.arg):
                self.env[arg.arg] = SEED
            elif is_rngish(arg.arg) or self._rng_annotation(arg.annotation):
                self.env[arg.arg] = RNG_OK

    def _rng_annotation(self, annotation: Optional[ast.expr]) -> bool:
        if annotation is None:
            return False
        dotted = _dotted(annotation)
        if dotted is None:
            return False
        tail = dotted.rsplit(".", 1)[-1]
        return tail in {"Random", "Generator", "RandomState"}

    def bind_assignments(self, body: List[ast.stmt]) -> None:
        """Process assignment statements in source order to build the env."""
        for stmt in body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    self.env[target.id] = self.eval(stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    self.env[stmt.target.id] = self.eval(stmt.value)
            elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id, OTHER)
                if current == SEED:  # seed arithmetic stays a seed
                    continue
                self.env[stmt.target.id] = self.eval(stmt.value)
            # Recurse into nested blocks (order-preserving, no CFG).
            for field_name in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, field_name, None)
                if nested:
                    self.bind_assignments(nested)
            for handler in getattr(stmt, "handlers", []) or []:
                self.bind_assignments(handler.body)

    # ------------------------------------------------------------------
    def eval(self, node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, OTHER)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.BinOp):
            left, right = self.eval(node.left), self.eval(node.right)
            if SEED in (left, right):
                return SEED
            return OTHER
        if isinstance(node, ast.IfExp):
            return join(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, (ast.Await, ast.Starred)):
            return self.eval(node.value)
        return OTHER

    def _eval_attribute(self, node: ast.Attribute) -> str:
        # ``self.attr`` reads go through the class attribute table first.
        if (
            self.receiver is not None
            and isinstance(node.value, ast.Name)
            and node.value.id == self.receiver
            and self.fn is not None
            and self.fn.cls is not None
        ):
            table = self.analysis.attr_tables.get(self.fn.cls, {})
            if node.attr in table:
                return table[node.attr]
        # Name-convention fallback: ``args.seed``, ``spec.seed``, ``cfg.rng``.
        if is_seedish(node.attr):
            return SEED
        if is_rngish(node.attr):
            return RNG_OK
        return OTHER

    def _seed_argument(self, call: ast.Call) -> Tuple[Optional[ast.expr], bool]:
        """The seed-carrying argument of an RNG constructor, if any."""
        if call.args:
            return call.args[0], True
        for keyword in call.keywords:
            if keyword.arg is not None and is_seedish(keyword.arg):
                return keyword.value, True
        return None, False

    def eval_call(self, call: ast.Call) -> str:
        constructor = self._constructor_name(call)
        if constructor is not None:
            seed_arg, has_seed = self._seed_argument(call)
            seed_taint = self.eval(seed_arg) if seed_arg is not None else None
            path = self.analysis.module_path(self.module)
            if constructor in NEVER_SEEDABLE:
                taint = RNG_BAD
            elif has_seed and seed_taint == SEED:
                taint = RNG_OK
            else:
                taint = RNG_BAD
            if taint == RNG_BAD:
                self.analysis.record_construction(
                    ConstructionSite(
                        module=self.module,
                        path=path,
                        node=call,
                        constructor=constructor,
                        seed_taint=seed_taint,
                    )
                )
            return taint
        # Resolved project callees: join their return summaries.
        if self.resolver is not None:
            callees = self.resolver.resolve_call(call)
            if callees:
                summary = self.analysis.summaries.get(callees[0].qualname, OTHER)
                for callee in callees[1:]:
                    summary = join(
                        summary, self.analysis.summaries.get(callee.qualname, OTHER)
                    )
                return summary
        # Convention fallback for snippet fixtures without full resolution.
        bare = self._bare_call_name(call)
        if bare == "derive_seed":
            return SEED
        if bare == "rng_for":
            return RNG_OK
        return OTHER

    def _constructor_name(self, call: ast.Call) -> Optional[str]:
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        canonical = self.analysis.project.symbols.canonical_from(self.module, dotted)
        if canonical in RNG_CONSTRUCTORS:
            return canonical
        return None

    @staticmethod
    def _bare_call_name(call: ast.Call) -> Optional[str]:
        if isinstance(call.func, ast.Name):
            return call.func.id
        if isinstance(call.func, ast.Attribute):
            return call.func.attr
        return None


class TaintAnalysis:
    """Whole-program RNG-taint: summaries, construction sites, violations."""

    def __init__(self, project: "ProjectContext") -> None:
        self.project = project
        #: Function qualname -> return taint.
        self.summaries: Dict[str, str] = {}
        #: Class qualname -> {attr name -> taint} from ``self.x = ...``.
        self.attr_tables: Dict[str, Dict[str, str]] = {}
        self.construction_sites: List[ConstructionSite] = []
        self.violations: Dict[str, List[Violation]] = {
            "DHS801": [],
            "DHS802": [],
            "DHS803": [],
        }
        self._recording = False
        self._seen_constructions: Set[int] = set()
        self._run()

    # ------------------------------------------------------------------
    def module_path(self, module: str) -> str:
        info = self.project.symbols.modules.get(module)
        return str(info.ctx.path) if info is not None else module

    def record_construction(self, site: ConstructionSite) -> None:
        if not self._recording or id(site.node) in self._seen_constructions:
            return
        if self._exempt(site.module):
            return
        self._seen_constructions.add(id(site.node))
        self.construction_sites.append(site)

    def _exempt(self, module: Optional[str]) -> bool:
        return module_in(module, self.project.config.determinism_exempt)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        symbols = self.project.symbols
        config = self.project.config
        resolvers = {
            fn.qualname: CallResolver(symbols, config, fn)
            for fn in symbols.functions.values()
        }
        # Exempt-module functions get convention-based summaries: the seed
        # module's own internals are the trusted root of the contract.
        pinned: Dict[str, str] = {}
        for fn in symbols.functions.values():
            if self._exempt(fn.module):
                if is_rngish(fn.name):
                    pinned[fn.qualname] = RNG_OK
                elif is_seedish(fn.name):
                    pinned[fn.qualname] = SEED
                else:
                    pinned[fn.qualname] = OTHER
        self.summaries = dict(pinned)
        for _ in range(8):  # fixpoint: summaries grow monotonically in practice
            changed = False
            self._rebuild_attr_tables(resolvers)
            for fn in symbols.functions.values():
                if fn.qualname in pinned:
                    continue
                summary = self._return_summary(fn, resolvers[fn.qualname])
                if self.summaries.get(fn.qualname) != summary:
                    self.summaries[fn.qualname] = summary
                    changed = True
            if not changed:
                break
        # Emission sweep (construction sites recorded only now).
        self._recording = True
        self._rebuild_attr_tables(resolvers)
        for fn in symbols.functions.values():
            if not self._exempt(fn.module):
                self._emit_for_function(fn, resolvers[fn.qualname])
        for module_name, info in symbols.modules.items():
            if not self._exempt(module_name):
                self._emit_for_module_body(module_name, info.ctx.tree)
        for site in self.construction_sites:
            self.violations["DHS801"].append(self._construction_violation(site))

    def _evaluator(self, fn: FunctionInfo, resolver: CallResolver) -> _Evaluator:
        evaluator = _Evaluator(self, fn.module, fn, resolver)
        evaluator.bind_assignments(fn.node.body)
        return evaluator

    def _rebuild_attr_tables(self, resolvers: Dict[str, CallResolver]) -> None:
        for cls in self.project.symbols.classes.values():
            table: Dict[str, str] = {}
            for method in cls.methods.values():
                receiver = method.receiver_name()
                if receiver is None:
                    continue
                evaluator = _Evaluator(
                    self, method.module, method, resolvers[method.qualname]
                )
                for node in ast.walk(method.node):
                    targets: List[ast.expr] = []
                    value: Optional[ast.expr] = None
                    if isinstance(node, ast.Assign):
                        targets, value = node.targets, node.value
                    elif isinstance(node, ast.AnnAssign) and node.value is not None:
                        targets, value = [node.target], node.value
                    if value is None:
                        continue
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == receiver
                        ):
                            taint = evaluator.eval(value)
                            previous = table.get(target.attr)
                            table[target.attr] = (
                                taint if previous is None else join(previous, taint)
                            )
            self.attr_tables[cls.qualname] = table

    def _return_summary(self, fn: FunctionInfo, resolver: CallResolver) -> str:
        evaluator = self._evaluator(fn, resolver)
        summary: Optional[str] = None
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                taint = evaluator.eval(node.value)
                summary = taint if summary is None else join(summary, taint)
        return summary if summary is not None else OTHER

    # ------------------------------------------------------------------
    def _construction_violation(self, site: ConstructionSite) -> Violation:
        if site.constructor in NEVER_SEEDABLE:
            detail = f"{site.constructor} is entropy-backed and can never be seeded"
        elif site.seed_taint is None:
            detail = (
                f"{site.constructor}() called without a seed — ambient entropy "
                "breaks trial reproducibility"
            )
        else:
            detail = (
                f"{site.constructor}(...) seed argument is not derived from the "
                "experiment seed (expected derive_seed(...)/rng_for(...) or a "
                "seed parameter)"
            )
        return Violation(
            code="DHS801",
            message=f"unseeded RNG construction: {detail}",
            path=site.path,
            line=site.node.lineno,
            col=site.node.col_offset,
        )

    def _emit_for_module_body(self, module_name: str, tree: ast.Module) -> None:
        """Module-level RNG constructions (``_RNG = random.Random()``)."""
        evaluator = _Evaluator(self, module_name, None, None)
        evaluator.bind_assignments(
            [
                stmt
                for stmt in tree.body
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
        )

    def _emit_for_function(self, fn: FunctionInfo, resolver: CallResolver) -> None:
        evaluator = self._evaluator(fn, resolver)
        path = self.module_path(fn.module)
        flagged: Set[int] = set()
        for call in iter_calls(fn.node):
            # Force evaluation so constructions inside non-assignment
            # expressions (e.g. ``use(random.Random())``) are recorded.
            evaluator.eval_call(call)
            callees = resolver.resolve_call(call)
            if not callees:
                continue
            summary = self.summaries.get(callees[0].qualname, OTHER)
            for callee in callees[1:]:
                summary = join(summary, self.summaries.get(callee.qualname, OTHER))
            if summary == RNG_BAD:
                self.violations["DHS802"].append(
                    Violation(
                        code="DHS802",
                        message=(
                            f"call to {callees[0].qualname} returns an RNG that is "
                            "not derived from the experiment seed"
                        ),
                        path=path,
                        line=call.lineno,
                        col=call.col_offset,
                    )
                )
            self._check_arguments(fn, path, call, callees, evaluator, flagged)

    def _check_arguments(
        self,
        fn: FunctionInfo,
        path: str,
        call: ast.Call,
        callees: List[FunctionInfo],
        evaluator: _Evaluator,
        flagged: Set[int],
    ) -> None:
        callee = callees[0]
        params = _parameter_names(callee)
        bound: List[Tuple[str, ast.expr]] = []
        # Skip the ``self`` slot for bound-method and constructor calls.
        offset = 1 if callee.receiver_name() is not None else 0
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            if index + offset < len(params):
                bound.append((params[index + offset], arg))
        for keyword in call.keywords:
            if keyword.arg is not None:
                bound.append((keyword.arg, keyword.value))
        for param, arg in bound:
            taint = evaluator.eval(arg)
            if id(arg) in flagged:
                continue
            if is_rngish(param) and taint == RNG_BAD:
                flagged.add(id(arg))
                self.violations["DHS802"].append(
                    Violation(
                        code="DHS802",
                        message=(
                            f"unseeded RNG passed to parameter {param!r} of "
                            f"{callee.qualname}"
                        ),
                        path=path,
                        line=arg.lineno,
                        col=arg.col_offset,
                    )
                )
            elif is_rngish(param) and taint == SEED:
                flagged.add(id(arg))
                self.violations["DHS803"].append(
                    Violation(
                        code="DHS803",
                        message=(
                            f"seed value passed to RNG parameter {param!r} of "
                            f"{callee.qualname} — construct via rng_for(...) first"
                        ),
                        path=path,
                        line=arg.lineno,
                        col=arg.col_offset,
                    )
                )
            elif is_seedish(param) and taint in (RNG_OK, RNG_BAD):
                flagged.add(id(arg))
                self.violations["DHS803"].append(
                    Violation(
                        code="DHS803",
                        message=(
                            f"RNG object passed to seed parameter {param!r} of "
                            f"{callee.qualname} — pass a derived seed instead"
                        ),
                        path=path,
                        line=arg.lineno,
                        col=arg.col_offset,
                    )
                )


def _parameter_names(fn: FunctionInfo) -> List[str]:
    args = fn.node.args
    return [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]


@register_project
class RngConstructionRule(ProjectRule):
    code = "DHS801"
    name = "rng-unseeded-construction"
    rationale = (
        "Every RNG must be constructed from a value derived from the "
        "experiment seed (rng_for/derive_seed or a seed parameter); ambient "
        "entropy makes trials irreproducible."
    )

    def check_project(self, project: "ProjectContext") -> Iterable[Violation]:
        return project.taint().violations["DHS801"]


@register_project
class RngFlowRule(ProjectRule):
    code = "DHS802"
    name = "rng-taint-flow"
    rationale = (
        "An unseeded RNG crossing a call boundary (returned by a helper or "
        "passed as an argument) silently poisons every downstream draw."
    )

    def check_project(self, project: "ProjectContext") -> Iterable[Violation]:
        return project.taint().violations["DHS802"]


@register_project
class SeedKindMismatchRule(ProjectRule):
    code = "DHS803"
    name = "seed-rng-kind-mismatch"
    rationale = (
        "Seeds and RNGs are different kinds: passing a raw seed where an RNG "
        "is expected (or an RNG as a seed) indicates a broken derivation chain."
    )

    def check_project(self, project: "ProjectContext") -> Iterable[Violation]:
        return project.taint().violations["DHS803"]
