"""Project-wide symbol table: modules, classes, functions, import aliases.

This is the name-resolution layer the dataflow passes sit on.  Every
analyzed file contributes a :class:`ModuleInfo` (its imports — absolute
and relative — its top-level defs, classes with methods, module-level
variable bindings, and ``__all__``); the :class:`SymbolTable` then
answers the cross-module questions: *what fully-qualified definition
does this dotted expression refer to from this module?*, following
import aliasing and package ``__init__`` re-export chains, and *which
project classes subclass this base?* for conservative dynamic dispatch.

Resolution is lexical and over-approximate (no control flow): if a name
*could* refer to a definition, it does.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from tools.analyze.engine import FileContext

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "SymbolTable",
    "build_symbols",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    node: FunctionNode
    #: Qualname of the owning class for methods, else ``None``.
    cls: Optional[str] = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    def receiver_name(self) -> Optional[str]:
        """Name of the ``self``/``cls`` parameter for instance methods."""
        if not self.is_method:
            return None
        decorators = {
            d.id for d in self.node.decorator_list if isinstance(d, ast.Name)
        }
        if "staticmethod" in decorators:
            return None
        args = self.node.args
        ordered = args.posonlyargs + args.args
        return ordered[0].arg if ordered else None


@dataclass
class ClassInfo:
    """One class definition with resolved base names and its methods."""

    qualname: str
    module: str
    node: ast.ClassDef
    #: Base classes as resolved dotted names (project or external).
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Per-module name bindings."""

    name: str
    ctx: FileContext
    #: Local alias -> dotted target (``np`` -> ``numpy``,
    #: ``union_all`` -> ``repro.sketches.merge.union_all``).
    imports: Dict[str, str] = field(default_factory=dict)
    #: Top-level function defs by bare name.
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Top-level class defs by bare name.
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Names bound by top-level assignments (module state candidates).
    variables: Set[str] = field(default_factory=set)
    #: ``__all__`` entries, when declared.
    exports: List[str] = field(default_factory=list)


def _relative_base(module: str, is_package: bool, level: int) -> Optional[str]:
    """Package a ``level``-deep relative import resolves against."""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop > len(parts):
        return None
    return ".".join(parts[: len(parts) - drop]) if drop else ".".join(parts)


def _collect_module(ctx: FileContext) -> ModuleInfo:
    assert ctx.module is not None
    info = ModuleInfo(name=ctx.module, ctx=ctx)
    is_package = ctx.is_package_init()
    for node in ctx.tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    info.imports[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds the name ``a``.
                    head = alias.name.split(".")[0]
                    info.imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _relative_base(ctx.module, is_package, node.level)
                if base is None:
                    continue
                source = f"{base}.{node.module}" if node.module else base
            else:
                source = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                info.imports[alias.asname or alias.name] = f"{source}.{alias.name}"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{ctx.module}.{node.name}"
            info.functions[node.name] = FunctionInfo(
                qualname=qualname, module=ctx.module, node=node
            )
        elif isinstance(node, ast.ClassDef):
            qualname = f"{ctx.module}.{node.name}"
            cls = ClassInfo(qualname=qualname, module=ctx.module, node=node)
            for body_item in node.body:
                if isinstance(body_item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[body_item.name] = FunctionInfo(
                        qualname=f"{qualname}.{body_item.name}",
                        module=ctx.module,
                        node=body_item,
                        cls=qualname,
                    )
            info.classes[node.name] = cls
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id == "__all__" and isinstance(node, ast.Assign):
                        value = node.value
                        if isinstance(value, (ast.List, ast.Tuple)):
                            info.exports = [
                                element.value
                                for element in value.elts
                                if isinstance(element, ast.Constant)
                                and isinstance(element.value, str)
                            ]
                    else:
                        info.variables.add(target.id)
    return info


class SymbolTable:
    """Cross-module name resolution over every analyzed file."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules = modules
        #: Every function/method by fully-qualified name.
        self.functions: Dict[str, FunctionInfo] = {}
        #: Every class by fully-qualified name.
        self.classes: Dict[str, ClassInfo] = {}
        #: All project methods sharing a bare name (purity fallback).
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        for module in modules.values():
            for fn in module.functions.values():
                self.functions[fn.qualname] = fn
            for cls in module.classes.values():
                self.classes[cls.qualname] = cls
                for method in cls.methods.values():
                    self.functions[method.qualname] = method
                    self.methods_by_name.setdefault(method.name, []).append(method)
        # Resolve class bases now that every class is known.
        for module in modules.values():
            for cls in module.classes.values():
                for base in cls.node.bases:
                    dotted = _dotted(base)
                    if dotted is None:
                        continue
                    cls.bases.append(
                        self.canonical_from(module.name, dotted) or dotted
                    )
        self._subclasses: Dict[str, Set[str]] = {}
        for cls in self.classes.values():
            for base in cls.bases:
                self._subclasses.setdefault(base, set()).add(cls.qualname)

    # ------------------------------------------------------------------
    # Canonicalization.
    # ------------------------------------------------------------------
    def canonical(self, dotted: str, _depth: int = 0) -> str:
        """Follow re-export/alias chains to a defining module's qualname.

        ``repro.sketches.union_all`` (a package ``__init__`` re-export)
        canonicalizes to ``repro.sketches.merge.union_all``.  Unknown
        names are returned unchanged.
        """
        if _depth > 16:
            return dotted
        if dotted in self.functions or dotted in self.classes:
            return dotted
        parts = dotted.split(".")
        # Longest module prefix wins.
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            module = self.modules.get(prefix)
            if module is None:
                continue
            head, rest = parts[cut], parts[cut + 1 :]
            if head in module.imports:
                target = ".".join([module.imports[head], *rest])
                return self.canonical(target, _depth + 1)
            if head in module.functions or head in module.classes or head in module.variables:
                return ".".join([prefix, head, *rest])
            return dotted
        return dotted

    def canonical_from(self, module_name: str, dotted: str) -> Optional[str]:
        """Canonical qualname of ``dotted`` as written inside ``module_name``."""
        module = self.modules.get(module_name)
        if module is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in module.imports:
            base = module.imports[head]
        elif head in module.functions or head in module.classes or head in module.variables:
            base = f"{module_name}.{head}"
        elif not rest:
            # Bare, never-imported name: return as-is so callers can
            # recognize builtins (``hash``, ``print``).
            return head
        else:
            return None
        target = f"{base}.{rest}" if rest else base
        return self.canonical(target)

    def resolve_expr(self, module_name: str, node: ast.expr) -> Optional[str]:
        """Canonical qualname of an attribute chain expression."""
        dotted = _dotted(node)
        if dotted is None:
            return None
        return self.canonical_from(module_name, dotted)

    # ------------------------------------------------------------------
    # Class hierarchy.
    # ------------------------------------------------------------------
    def subclasses(self, qualname: str) -> Set[str]:
        """Transitive project subclasses of ``qualname``."""
        out: Set[str] = set()
        frontier = [qualname]
        while frontier:
            current = frontier.pop()
            for child in self._subclasses.get(current, ()):
                if child not in out:
                    out.add(child)
                    frontier.append(child)
        return out

    def mro_method(self, class_qualname: str, name: str) -> Optional[FunctionInfo]:
        """First definition of ``name`` walking up the (project) bases."""
        seen: Set[str] = set()
        frontier = [class_qualname]
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name]
            frontier.extend(cls.bases)
        return None

    def implementations(self, class_qualname: str, name: str) -> List[FunctionInfo]:
        """Every implementation of ``name`` in the class or its subclasses."""
        out: List[FunctionInfo] = []
        for candidate in [class_qualname, *sorted(self.subclasses(class_qualname))]:
            cls = self.classes.get(candidate)
            if cls is not None and name in cls.methods:
                out.append(cls.methods[name])
        return out

    def dispatch_method(self, name: str, roots: Tuple[str, ...]) -> List[FunctionInfo]:
        """Dispatch-root resolution: all implementors of ``name`` under any root."""
        out: List[FunctionInfo] = []
        for root in roots:
            if self.mro_method(root, name) is not None or any(
                name in self.classes[sub].methods
                for sub in self.subclasses(root)
                if sub in self.classes
            ):
                out.extend(self.implementations(root, name))
        return out


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` attribute chain as a dotted string, else ``None``."""
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    chain.append(node.id)
    return ".".join(reversed(chain))


def build_symbols(contexts: List[FileContext]) -> SymbolTable:
    """Build the project symbol table from parsed file contexts."""
    modules: Dict[str, ModuleInfo] = {}
    for ctx in contexts:
        if ctx.module is None:
            continue
        modules[ctx.module] = _collect_module(ctx)
    return SymbolTable(modules)
