"""ProjectContext: the shared whole-program state behind every DHS8xx rule.

Built once per ``analyze_paths(..., dataflow=True)`` run: the symbol
table and call graph are constructed eagerly; the three dataflow
analyses (RNG-taint, worker shared-state, purity effects) are memoized
lazily so each runs at most once no matter how many rule classes
consume its result stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from tools.analyze.config import Config
from tools.analyze.engine import FileContext
from tools.analyze.dataflow.callgraph import CallGraph, build_callgraph
from tools.analyze.dataflow.symbols import SymbolTable, build_symbols

if TYPE_CHECKING:  # pragma: no cover - typing only
    from tools.analyze.dataflow.purity import EffectAnalysis
    from tools.analyze.dataflow.shared_state import WorkerAnalysis
    from tools.analyze.dataflow.taint import TaintAnalysis

__all__ = ["ProjectContext", "build_project"]


class ProjectContext:
    """Symbol table + call graph + memoized dataflow analyses."""

    def __init__(self, contexts: List[FileContext], config: Config) -> None:
        self.contexts = contexts
        self.config = config
        self.symbols: SymbolTable = build_symbols(contexts)
        self.graph: CallGraph = build_callgraph(self.symbols, config)
        self._taint: Optional["TaintAnalysis"] = None
        self._effects: Optional["EffectAnalysis"] = None
        self._worker: Optional["WorkerAnalysis"] = None

    # ------------------------------------------------------------------
    # Memoized analyses (each runs once per project build).
    # ------------------------------------------------------------------
    def taint(self) -> "TaintAnalysis":
        if self._taint is None:
            from tools.analyze.dataflow.taint import TaintAnalysis

            self._taint = TaintAnalysis(self)
        return self._taint

    def effects(self) -> "EffectAnalysis":
        if self._effects is None:
            from tools.analyze.dataflow.purity import EffectAnalysis

            self._effects = EffectAnalysis(self)
        return self._effects

    def worker(self) -> "WorkerAnalysis":
        if self._worker is None:
            from tools.analyze.dataflow.shared_state import WorkerAnalysis

            self._worker = WorkerAnalysis(self)
        return self._worker

    def stats(self) -> Dict[str, int]:
        """Summary counters for reports (``Report.dataflow``)."""
        worker = self.worker()
        return {
            "modules": len(self.symbols.modules),
            "functions": len(self.symbols.functions),
            "classes": len(self.symbols.classes),
            "call_edges": self.graph.edge_count,
            "worker_roots": len(worker.roots),
            "worker_reachable": len(worker.reachable),
            "rng_constructions": len(self.taint().construction_sites),
            "purity_required": len(self.effects().required),
        }


def build_project(contexts: List[FileContext], config: Config) -> ProjectContext:
    """Build the whole-program context over every parsed file."""
    return ProjectContext(contexts, config)
