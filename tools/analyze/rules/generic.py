"""Generic hygiene rules (DHS4xx).

Not DHS-specific, but each has bitten estimator codebases: shared mutable
defaults alias sketch state across instances, broad excepts swallow the
library's own :class:`~repro.errors.ReproError` hierarchy, and a stale
``__all__`` silently changes what ``import *`` and the docs expose.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence, Set

from tools.analyze.engine import FileContext, Rule, Violation, register
from tools.analyze.rules._imports import ImportTable

_MUTABLE_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.deque",
        "collections.OrderedDict",
        "collections.Counter",
    }
)


def _is_mutable_default(node: ast.expr, table: ImportTable) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return table.resolve(node.func) in _MUTABLE_CALLS
    return False


@register
class MutableDefault(Rule):
    """DHS401 — mutable default argument."""

    code = "DHS401"
    name = "mutable-default"
    rationale = (
        "A mutable default is evaluated once and shared by every call — "
        "for sketch/overlay classes that means state aliased across "
        "instances. Default to None and construct inside the function."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        table = ImportTable(ctx.tree)
        out: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults: List[Optional[ast.expr]] = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if default is not None and _is_mutable_default(default, table):
                    out.append(
                        self.violation(
                            ctx, default, "mutable default argument is shared across "
                            "calls; default to None and build it in the body"
                        )
                    )
        return out


@register
class BroadExcept(Rule):
    """DHS402 — bare or overly broad exception handler."""

    code = "DHS402"
    name = "broad-except"
    rationale = (
        "`except:` / `except Exception` swallows ReproError subclasses "
        "that carry real diagnostics (ConfigurationError, "
        "EmptyOverlayError, ...) and masks genuine bugs as 'expected' "
        "failures. Catch the narrowest type; a handler that re-raises is "
        "exempt."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        out: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node.type)
            if broad is None:
                continue
            if any(isinstance(child, ast.Raise) for child in ast.walk(node)):
                continue  # re-raising handlers are deliberate
            label = "bare `except:`" if broad == "" else f"`except {broad}:`"
            out.append(
                self.violation(
                    ctx, node, f"{label} swallows the ReproError hierarchy; "
                    "catch the narrowest exception type"
                )
            )
        return out

    @staticmethod
    def _broad_name(type_node: Optional[ast.expr]) -> Optional[str]:
        """'' for bare except, the name for Exception/BaseException, else None."""
        if type_node is None:
            return ""
        candidates: Sequence[ast.expr]
        candidates = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        for candidate in candidates:
            if isinstance(candidate, ast.Name) and candidate.id in (
                "Exception",
                "BaseException",
            ):
                return candidate.id
        return None


@register
class AllDrift(Rule):
    """DHS403 — ``__all__`` out of sync with the module's public names."""

    code = "DHS403"
    name = "all-drift"
    rationale = (
        "`__all__` is the API contract the docs and `import *` rely on. "
        "Names listed but not defined raise at `import *` time; public "
        "functions/classes defined but unlisted drift out of the "
        "documented surface unnoticed."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        dunder_all = self._find_all(ctx.tree)
        if dunder_all is None:
            return []
        all_node, exported = dunder_all
        defined = self._defined_names(ctx.tree)
        out: List[Violation] = []
        for name in exported:
            if name not in defined:
                out.append(
                    self.violation(
                        ctx, all_node, f"`__all__` lists '{name}' which is not "
                        "defined in the module"
                    )
                )
        public = self._public_defs(ctx.tree)
        for node, name in public:
            if name not in exported:
                out.append(
                    self.violation(
                        ctx, node, f"public name '{name}' is missing from `__all__` "
                        "(export it or prefix with '_')"
                    )
                )
        return out

    @staticmethod
    def _find_all(tree: ast.Module) -> Optional[tuple]:
        for stmt in tree.body:
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            if (
                isinstance(target, ast.Name)
                and target.id == "__all__"
                and isinstance(value, (ast.List, ast.Tuple))
            ):
                names = [
                    elt.value
                    for elt in value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                ]
                return stmt, names
        return None

    @staticmethod
    def _defined_names(tree: ast.Module) -> Set[str]:
        """Names bound at module level (descending into if/try/with blocks)."""
        defined: Set[str] = set()

        def collect(statements: Iterable[ast.stmt]) -> None:
            for stmt in statements:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    defined.add(stmt.name)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        for name in ast.walk(target):
                            if isinstance(name, ast.Name):
                                defined.add(name.id)
                elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                    defined.add(stmt.target.id)
                elif isinstance(stmt, ast.Import):
                    for alias in stmt.names:
                        defined.add(alias.asname or alias.name.split(".")[0])
                elif isinstance(stmt, ast.ImportFrom):
                    for alias in stmt.names:
                        defined.add(alias.asname or alias.name)
                elif isinstance(stmt, ast.If):
                    collect(stmt.body)
                    collect(stmt.orelse)
                elif isinstance(stmt, ast.Try):
                    collect(stmt.body)
                    collect(stmt.orelse)
                    collect(stmt.finalbody)
                    for handler in stmt.handlers:
                        collect(handler.body)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    collect(stmt.body)

        collect(tree.body)
        return defined

    @staticmethod
    def _public_defs(tree: ast.Module) -> List[tuple]:
        """Public functions/classes defined directly at module top level."""
        return [
            (stmt, stmt.name)
            for stmt in tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and not stmt.name.startswith("_")
        ]
