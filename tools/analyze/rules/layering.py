"""Layering rules (DHS2xx): enforce the import DAG.

The architecture is a strict bottom-up DAG (see docs/ARCHITECTURE.md §6)::

    errors, hashing          (layer 0 — self-contained leaves)
    sim, sketches            (layer 1)
    overlay, workloads       (layer 2)
    core                     (layer 3 — the paper's contribution)
    histograms, baselines    (layer 4)
    query                    (layer 5)
    experiments              (layer 6)
    cli                      (layer 7)

A module may import from strictly lower layers (and from its own
sub-package); same-layer siblings and upward imports are forbidden, so
e.g. ``sketches`` can never grow a dependency on ``sim``, and nothing
below ``cli`` can reach the experiment drivers.  ``repro.hashing`` is held
to an even stricter standard: it must stay fully self-contained (DHS202),
because the seed-derivation root ``repro.sim.seeds`` depends on it and any
cycle there would poison determinism for the whole stack.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Tuple

from tools.analyze.engine import FileContext, Rule, Violation, register

#: Top-level modules of the root package that may import from any layer.
_UNRESTRICTED_SEGMENTS = frozenset({"__main__"})


def _imports(
    ctx: FileContext,
) -> Iterator[Tuple[ast.stmt, str]]:
    """Yield ``(node, absolute_target_module)`` for every intra-tree import."""
    parts = ctx.package_parts
    is_package = ctx.path.name == "__init__.py"
    container = parts if is_package else parts[:-1]
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                if node.module:
                    yield node, node.module
                continue
            base = container[: len(container) - (node.level - 1)]
            target = list(base) + (node.module.split(".") if node.module else [])
            yield node, ".".join(target)


def _segment(parts: Tuple[str, ...]) -> Optional[str]:
    """Top-level segment under the root package, ``None`` for the root itself."""
    return parts[1] if len(parts) > 1 else None


@register
class LayeringDAG(Rule):
    """DHS201 — upward or cross-layer import between sub-packages."""

    code = "DHS201"
    name = "layering-dag"
    rationale = (
        "The layering DAG is what keeps refactors local: estimator math "
        "(`sketches`) cannot observe the overlay, overlays cannot reach "
        "into `core`, and nothing below the drivers imports them. Upward "
        "or sibling imports create cycles and make the layers untestable "
        "in isolation."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        config = ctx.config
        if not ctx.in_package():
            return []
        source_segment = _segment(ctx.package_parts)
        if source_segment is None or source_segment in _UNRESTRICTED_SEGMENTS:
            return []  # the root facade may re-export anything
        source_layer = config.layer_of(source_segment)
        if source_layer is None or source_segment == "hashing":
            return []  # DHS203 / DHS202 report these
        out: List[Violation] = []
        for node, target in _imports(ctx):
            target_parts = tuple(target.split("."))
            if target_parts[0] != config.package:
                continue
            target_segment = _segment(target_parts)
            if target_segment is None:
                out.append(
                    self.violation(
                        ctx, node, f"`{source_segment}` (layer {source_layer}) imports "
                        f"the root facade `{config.package}`; import the concrete "
                        "lower-layer module instead"
                    )
                )
                continue
            if target_segment == source_segment:
                continue
            target_layer = config.layer_of(target_segment)
            if target_layer is None:
                continue  # unassigned targets are DHS203's problem
            if target_layer >= source_layer:
                kind = "same-layer" if target_layer == source_layer else "upward"
                out.append(
                    self.violation(
                        ctx, node, f"{kind} import: `{source_segment}` (layer "
                        f"{source_layer}) may not import `{target_segment}` "
                        f"(layer {target_layer}); allowed targets are layers "
                        f"< {source_layer}"
                    )
                )
        return out


@register
class HashingSelfContained(Rule):
    """DHS202 — ``repro.hashing`` importing anything from ``repro.*``."""

    code = "DHS202"
    name = "hashing-self-contained"
    rationale = (
        "`repro.hashing` is the determinism bedrock: `repro.sim.seeds` "
        "derives every sub-seed through its mixers. It must not import "
        "any `repro.*` module — not even `errors` — so it can never "
        "participate in an import cycle with the code it seeds."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        config = ctx.config
        if not ctx.in_package() or _segment(ctx.package_parts) != "hashing":
            return []
        out: List[Violation] = []
        for node, target in _imports(ctx):
            target_parts = tuple(target.split("."))
            if target_parts[0] != config.package:
                continue
            if _segment(target_parts) == "hashing":
                continue
            out.append(
                self.violation(
                    ctx, node, f"`{config.package}.hashing` must stay self-contained "
                    f"but imports `{target}`"
                )
            )
        return out


@register
class UnassignedLayer(Rule):
    """DHS203 — sub-package missing from the ``[tool.dhslint]`` layer map."""

    code = "DHS203"
    name = "unassigned-layer"
    rationale = (
        "Every top-level sub-package must be placed in the layer DAG, "
        "otherwise DHS201 silently stops checking its imports. Adding a "
        "package to the tree forces a conscious decision about where it "
        "sits."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        if not ctx.in_package():
            return []
        segment = _segment(ctx.package_parts)
        if segment is None or segment in _UNRESTRICTED_SEGMENTS:
            return []
        if ctx.config.layer_of(segment) is None:
            return [
                self.violation(
                    ctx, ctx.tree, f"`{ctx.config.package}.{segment}` is not assigned "
                    "to a layer in [tool.dhslint] `layers`"
                )
            ]
        return []
