"""Rule modules — importing this package registers every rule."""

from tools.analyze.rules import (  # noqa: F401
    determinism,
    floats,
    generic,
    layering,
    observability,
    parallelism,
    reconciliation,
    robustness,
)
