"""Rule modules — importing this package registers every rule."""

from tools.analyze.rules import determinism, floats, generic, layering  # noqa: F401
