"""Robustness rules (DHS6xx).

The fault-injection and retry machinery runs entirely on a *logical*
clock: outage windows are ticks (`FaultInjector.advance_to`), retry
backoff is charged in hops (`RetryPolicy.backoff_cost`), and nothing in
the library ever waits for real time to pass.  Together with DHS102
(which flags wall-clock *reads* like ``time.time`` / ``datetime.now``),
DHS601 closes the family: no wall-clock API — read or wait — survives
inside ``src/repro``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List

from tools.analyze.engine import FileContext, Rule, Violation, register
from tools.analyze.rules._imports import ImportTable

#: APIs that block on, or schedule against, host wall-clock time.
_WAIT_CALLS = frozenset(
    {
        "time.sleep",
        "asyncio.sleep",
        "asyncio.wait_for",
        "threading.Timer",
        "signal.alarm",
        "signal.setitimer",
        "socket.setdefaulttimeout",
        "select.select",
        "sched.scheduler",
    }
)


def _calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


@register
class RealTimeWait(Rule):
    """DHS601 — sleeping / real-time scheduling in the simulation package."""

    code = "DHS601"
    name = "real-time-wait"
    rationale = (
        "Faults, outage windows and retry backoff are modelled on the "
        "logical clock and charged in hops — `time.sleep()` (or any timer "
        "scheduled against the host clock) stalls the simulation without "
        "moving it, couples runs to the host machine, and hides the cost "
        "the paper's analysis accounts for. Advance the logical clock "
        "(`FaultInjector.advance_to`) or charge hops "
        "(`RetryPolicy.backoff_cost`) instead."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        if not ctx.in_package():
            return []
        table = ImportTable(ctx.tree)
        out: List[Violation] = []
        for call in _calls(ctx.tree):
            origin = table.resolve(call.func)
            if origin in _WAIT_CALLS:
                out.append(
                    self.violation(
                        ctx, call, f"`{origin}()` waits on the host wall clock; "
                        "model time as logical ticks and backoff as hop cost"
                    )
                )
        return out
