"""Reconciliation rules (DHS10xx).

Anti-entropy correctness hinges on one invariant: **both register
backends digest to identical bytes**.  ``repro.overlay.antientropy``
canonicalizes a register row the same way whether it lives as a Python
``int`` mask or as an arena row (``RegArena.rows_canonical`` mirrors
``mask.to_bytes(..., "little")`` with trailing zeros stripped), and
every digest in the system is built from that one canonical form.  A
second module hashing arena state independently would fork the
canonicalization — two nodes could disagree about convergence purely
because of *how* they hashed, the exact failure mode digest trees exist
to rule out.  DHS1001 therefore confines digest computation over
register state to the antientropy module, the same way DHS901 confines
shared-memory segment lifecycle to ``repro.core.regstore``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from tools.analyze.engine import FileContext, Rule, Violation, register
from tools.analyze.rules._imports import ImportTable

#: The one module allowed to hash register-store state.
_ANTIENTROPY_ROOT = "repro.overlay.antientropy"

#: The register-arena module whose state is being digested.
_REGSTORE_ROOT = "repro.core.regstore"


def _imports_regstore(tree: ast.AST) -> bool:
    """Whether the module imports ``repro.core.regstore`` in any form."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name.startswith(_REGSTORE_ROOT) for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            if node.module.startswith(_REGSTORE_ROOT):
                return True
            if node.module == "repro.core" and any(
                alias.name == "regstore" for alias in node.names
            ):
                return True
    return False


@register
class DigestOutsideAntientropy(Rule):
    """DHS1001 — hashing register-arena state outside the antientropy module."""

    code = "DHS1001"
    name = "digest-outside-antientropy"
    rationale = (
        "Anti-entropy digests are only meaningful if every node computes "
        "them from the identical canonical bytes: "
        "`repro.overlay.antientropy` owns that canonicalization "
        "(`RegArena.rows_canonical` <-> `mask.to_bytes`, little-endian, "
        "trailing zeros stripped) and the blake2b leaf/segment/root "
        "construction over it. A module that imports repro.core.regstore "
        "and hashes on its own forks the canonical form — two replicas "
        "could then disagree about convergence because of how they "
        "hashed, not what they store. Compute digests via "
        "repro.overlay.antientropy (store_digest / view_digest) instead."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        if not ctx.in_package() or ctx.module == _ANTIENTROPY_ROOT:
            return []
        if not _imports_regstore(ctx.tree):
            return []
        out: List[Violation] = []
        table = ImportTable(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "hashlib" or alias.name.startswith("hashlib."):
                        out.append(
                            self.violation(
                                ctx, node, f"`import {alias.name}` next to a "
                                f"{_REGSTORE_ROOT} import; digesting register "
                                f"state belongs to {_ANTIENTROPY_ROOT}"
                            )
                        )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                if node.module == "hashlib" or node.module.startswith("hashlib."):
                    out.append(
                        self.violation(
                            ctx, node, f"`from {node.module} import ...` next to "
                            f"a {_REGSTORE_ROOT} import; digesting register "
                            f"state belongs to {_ANTIENTROPY_ROOT}"
                        )
                    )
            elif isinstance(node, ast.Call):
                origin = table.resolve(node.func)
                if origin is not None and origin.startswith("hashlib."):
                    out.append(
                        self.violation(
                            ctx, node, f"`{origin}()` hashes in a module that "
                            f"imports {_REGSTORE_ROOT}; compute register "
                            f"digests via {_ANTIENTROPY_ROOT} instead"
                        )
                    )
        return out
