"""Shared helper: resolve attribute chains through import aliases.

Turns ``rnd.gauss(...)`` into ``"random.gauss"`` when the module was bound
with ``import random as rnd``, and ``default_rng(...)`` into
``"numpy.random.default_rng"`` after ``from numpy.random import
default_rng``.  Resolution is purely lexical — no control-flow tracking —
which is exactly the over-approximation a linter wants: if a name *could*
refer to the module, treat it as if it does.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional


class ImportTable:
    """Alias tables for one module's imports."""

    def __init__(self, tree: ast.Module) -> None:
        #: ``import numpy as np`` -> {"np": "numpy"}
        self.modules: Dict[str, str] = {}
        #: ``from random import random as rnd`` -> {"rnd": "random.random"}
        self.names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Dotted origin of an expression, e.g. ``"numpy.random.default_rng"``."""
        chain = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        if base in self.modules:
            root = self.modules[base]
        elif base in self.names:
            root = self.names[base]
        elif not chain:
            # A bare name that was never imported: resolve to itself so
            # callers can recognise builtins such as ``hash``.
            return base
        else:
            return None
        return ".".join([root, *reversed(chain)])
