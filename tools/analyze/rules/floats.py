"""Float-safety rule (DHS301).

Estimator code is numerically delicate: PCSA/super-LogLog bias constants,
Ertl-style corrections, harmonic means. Exact ``==``/``!=`` between float
expressions is almost always a latent bug there — the comparison silently
changes outcome with evaluation order, vectorization, or a constant port.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from tools.analyze.engine import FileContext, Rule, Violation, register
from tools.analyze.rules._imports import ImportTable

#: Calls whose results are float-valued for our purposes.
_FLOAT_CALLS = frozenset(
    {
        "float",
        "math.log",
        "math.log2",
        "math.log10",
        "math.log1p",
        "math.exp",
        "math.expm1",
        "math.sqrt",
        "math.pow",
        "math.ldexp",
        "math.fsum",
        "math.hypot",
        "math.gamma",
        "math.erf",
    }
)


def _is_floatish(node: ast.expr, table: ImportTable) -> bool:
    """Conservatively: is this expression obviously float-valued?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand, table)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left, table) or _is_floatish(node.right, table)
    if isinstance(node, ast.Call):
        origin = table.resolve(node.func)
        return origin in _FLOAT_CALLS
    return False


@register
class FloatEquality(Rule):
    """DHS301 — exact ``==``/``!=`` on float expressions in estimator code."""

    code = "DHS301"
    name = "float-equality"
    rationale = (
        "Exact float equality in `sketches`/`core`/`histograms` breaks "
        "under re-ordering, vectorized twins, and constant ports (e.g. "
        "Ertl's HLL corrections). Compare with `math.isclose` or an "
        "explicit tolerance; suppress inline only where exact equality is "
        "the *specified* behaviour (e.g. a sentinel 0.0)."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        if ctx.module is not None:
            prefixes = ctx.config.float_strict
            if not any(
                ctx.module == p or ctx.module.startswith(p + ".") for p in prefixes
            ):
                return []
        table = ImportTable(ctx.tree)
        out: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floatish(left, table) or _is_floatish(right, table):
                    out.append(
                        self.violation(
                            ctx, node, "exact float equality; use math.isclose "
                            "or an explicit tolerance"
                        )
                    )
                    break
        return out
