"""Parallelism rules (DHS5xx).

The experiment harness has exactly one blessed process-fan-out point:
``repro.sim.parallel.run_trials``.  Everything it guarantees — results
bit-identical to the serial run at any worker count — holds only because
each :class:`~repro.sim.parallel.TrialSpec` derives its randomness from
an explicit seed and the runner collects results in submission order.
These rules keep the guarantee enforceable: no ad-hoc process pools
elsewhere in the library, and no experiment driver splitting work with a
hard-coded (or missing) seed.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from tools.analyze.engine import FileContext, Rule, Violation, register
from tools.analyze.rules._imports import ImportTable

#: The one module allowed to spawn worker processes.
_PARALLEL_ROOT = "repro.sim.parallel"

#: The one module allowed to touch ``multiprocessing.shared_memory``
#: (segment lifecycle — create/attach/close/unlink — is audited there).
_REGSTORE_ROOT = "repro.core.regstore"

#: Top-level modules whose import (or use) means process fan-out.
_POOL_MODULES = ("multiprocessing", "concurrent")

#: Direct fork/exec escape hatches.
_FORK_CALLS = frozenset({"os.fork", "os.forkpty", "os.spawnl", "os.spawnv"})


def _pool_import_root(name: str) -> Optional[str]:
    """The offending top-level module if ``name`` is a pool import."""
    root = name.split(".")[0]
    return root if root in _POOL_MODULES else None


@register
class AdHocProcessPool(Rule):
    """DHS501 — process fan-out outside ``repro.sim.parallel``."""

    code = "DHS501"
    name = "ad-hoc-process-pool"
    rationale = (
        "`repro.sim.parallel.run_trials` is the only sanctioned process "
        "fan-out: it derives every trial's seed up front and collects "
        "results in submission order, which is what makes parallel runs "
        "bit-identical to serial ones. An ad-hoc `multiprocessing` / "
        "`concurrent.futures` pool (or raw `os.fork`) elsewhere in the "
        "library reintroduces scheduling-dependent results. Declare "
        "TrialSpecs and call run_trials instead. (One carve-out: "
        "repro.core.regstore may import multiprocessing.shared_memory — "
        "it owns segment lifecycle, enforced separately by DHS901.)"
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        if not ctx.in_package() or ctx.module == _PARALLEL_ROOT:
            return []
        regstore = ctx.module == _REGSTORE_ROOT
        out: List[Violation] = []
        table = ImportTable(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = _pool_import_root(alias.name)
                    if root is None:
                        continue
                    if regstore and alias.name == "multiprocessing.shared_memory":
                        continue  # the DHS901 carve-out
                    out.append(
                        self.violation(
                            ctx, node, f"`import {alias.name}` outside "
                            f"{_PARALLEL_ROOT}; fan out via "
                            "repro.sim.parallel.run_trials"
                        )
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                root = _pool_import_root(node.module)
                if root is not None:
                    if regstore and (
                        node.module == "multiprocessing.shared_memory"
                        or (
                            node.module == "multiprocessing"
                            and all(
                                alias.name == "shared_memory"
                                for alias in node.names
                            )
                        )
                    ):
                        continue  # the DHS901 carve-out
                    out.append(
                        self.violation(
                            ctx, node, f"`from {node.module} import ...` outside "
                            f"{_PARALLEL_ROOT}; fan out via "
                            "repro.sim.parallel.run_trials"
                        )
                    )
            elif isinstance(node, ast.Call):
                origin = table.resolve(node.func)
                if origin in _FORK_CALLS:
                    out.append(
                        self.violation(
                            ctx, node, f"`{origin}()` forks the process directly; "
                            "fan out via repro.sim.parallel.run_trials"
                        )
                    )
        return out


@register
class SharedMemoryOutsideRegstore(Rule):
    """DHS901 — ``multiprocessing.shared_memory`` outside the arena module."""

    code = "DHS901"
    name = "shared-memory-outside-regstore"
    rationale = (
        "Shared-memory segments are kernel objects with an explicit "
        "lifecycle: whoever creates one must unlink it, attachers must "
        "close without unlinking, and a crashed worker must never strand "
        "a segment in /dev/shm. `repro.core.regstore.RegArena` is the "
        "one audited owner of that lifecycle (create/attach/close/unlink "
        "plus finalizer safety nets and the fork-shared resource-tracker "
        "semantics). Direct `multiprocessing.shared_memory` use anywhere "
        "else bypasses those guarantees — go through a RegArena."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        if not ctx.in_package() or ctx.module == _REGSTORE_ROOT:
            return []
        out: List[Violation] = []
        table = ImportTable(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith("multiprocessing.shared_memory"):
                        out.append(
                            self.violation(
                                ctx, node, f"`import {alias.name}` outside "
                                f"{_REGSTORE_ROOT}; segment lifecycle belongs "
                                "to repro.core.regstore.RegArena"
                            )
                        )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                if node.module.startswith("multiprocessing.shared_memory") or (
                    node.module == "multiprocessing"
                    and any(alias.name == "shared_memory" for alias in node.names)
                ):
                    out.append(
                        self.violation(
                            ctx, node, f"`from {node.module} import ...` pulls in "
                            f"shared_memory outside {_REGSTORE_ROOT}; segment "
                            "lifecycle belongs to repro.core.regstore.RegArena"
                        )
                    )
            elif isinstance(node, ast.Call):
                origin = table.resolve(node.func)
                if origin is not None and origin.startswith(
                    "multiprocessing.shared_memory."
                ):
                    out.append(
                        self.violation(
                            ctx, node, f"`{origin}()` outside {_REGSTORE_ROOT}; "
                            "segment lifecycle belongs to "
                            "repro.core.regstore.RegArena"
                        )
                    )
        return out


@register
class UnseededTrialSpec(Rule):
    """DHS502 — TrialSpec in an experiment driver without a derived seed."""

    code = "DHS502"
    name = "unseeded-trial-spec"
    rationale = (
        "A TrialSpec's seed is the *only* state its trial may depend on — "
        "the determinism contract says (fn, seed, kwargs) fully determine "
        "the result. A missing seed silently defaults, and a literal "
        "integer pins every grid cell to the same stream instead of "
        "flowing from the experiment's master seed; both make the "
        "parallel/serial equivalence unverifiable. Pass the driver's "
        "`seed` argument (or a `derive_seed(...)` of it)."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        parts = ctx.package_parts
        if len(parts) < 2 or parts[0] != ctx.config.package or parts[1] != "experiments":
            return []
        table = ImportTable(ctx.tree)
        out: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = table.resolve(node.func)
            if origin != f"{_PARALLEL_ROOT}.TrialSpec":
                continue
            seed: Optional[ast.expr] = None
            if len(node.args) >= 2:
                seed = node.args[1]
            for keyword in node.keywords:
                if keyword.arg == "seed":
                    seed = keyword.value
            if seed is None:
                out.append(
                    self.violation(
                        ctx, node, "TrialSpec without `seed=`; every trial must "
                        "carry an explicitly derived seed"
                    )
                )
            elif isinstance(seed, ast.Constant) and isinstance(seed.value, int):
                out.append(
                    self.violation(
                        ctx, node, "TrialSpec with a literal seed; derive it from "
                        "the driver's master seed (e.g. `seed=seed` or "
                        "`derive_seed(seed, ...)`)"
                    )
                )
        return out
