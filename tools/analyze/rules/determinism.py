"""Determinism rules (DHS1xx).

Every stochastic choice in this library must flow through
``repro.sim.seeds.rng_for`` so a single master seed replays an experiment
bit-for-bit.  These rules catch the escape hatches: module-level RNGs,
wall-clock/entropy reads, and the per-process-salted builtin ``hash``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List

from tools.analyze.engine import FileContext, Rule, Violation, register
from tools.analyze.rules._imports import ImportTable

#: Wall-clock / process-entropy sources that break deterministic replay.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.randbelow",
        "secrets.choice",
    }
)

_DATETIME_SUFFIXES = (".now", ".utcnow", ".today")


def _calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


@register
class UnseededRng(Rule):
    """DHS101 — module-level / directly-constructed RNG outside the seed root."""

    code = "DHS101"
    name = "unseeded-rng"
    rationale = (
        "Module-level `random.*` and `numpy.random.*` draw from hidden global "
        "state, and a bare `random.Random()` / `default_rng()` seeds itself "
        "from OS entropy; both break bit-for-bit replay from the master seed. "
        "Derive all randomness via `repro.sim.seeds.rng_for` (or pass an "
        "explicitly derived seed to `default_rng`)."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        if ctx.module in ctx.config.determinism_exempt:
            return []
        table = ImportTable(ctx.tree)
        out: List[Violation] = []
        for call in _calls(ctx.tree):
            origin = table.resolve(call.func)
            if origin is None:
                continue
            if origin in ("random.Random", "random.SystemRandom"):
                out.append(
                    self.violation(
                        ctx, call, f"direct `{origin}(...)` bypasses rng_for; "
                        "use repro.sim.seeds.rng_for(master, *labels)"
                    )
                )
            elif origin.startswith("random."):
                out.append(
                    self.violation(
                        ctx, call, f"module-level `{origin}()` uses hidden global RNG "
                        "state; use an rng from repro.sim.seeds.rng_for"
                    )
                )
            elif origin == "numpy.random.default_rng":
                if not call.args and not call.keywords:
                    out.append(
                        self.violation(
                            ctx, call, "`default_rng()` without a seed draws OS "
                            "entropy; pass a seed derived via repro.sim.seeds.derive_seed"
                        )
                    )
            elif origin.startswith("numpy.random."):
                out.append(
                    self.violation(
                        ctx, call, f"module-level `{origin}()` uses numpy's hidden "
                        "global RNG; use default_rng(derive_seed(...))"
                    )
                )
        return out


@register
class WallClock(Rule):
    """DHS102 — wall-clock or OS-entropy read in simulation/estimator code."""

    code = "DHS102"
    name = "wall-clock"
    rationale = (
        "The simulation is *counted*, not timed: TTLs, sweeps and costs all "
        "advance on logical time passed in by the caller. A wall-clock or "
        "entropy read makes a run irreproducible and couples results to the "
        "host machine."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        table = ImportTable(ctx.tree)
        out: List[Violation] = []
        for call in _calls(ctx.tree):
            origin = table.resolve(call.func)
            if origin is None:
                continue
            if origin in _CLOCK_CALLS:
                out.append(
                    self.violation(
                        ctx, call, f"`{origin}()` reads host wall-clock/entropy; "
                        "pass logical time (`now`) explicitly"
                    )
                )
            elif origin.startswith("datetime.") and origin.endswith(_DATETIME_SUFFIXES):
                out.append(
                    self.violation(
                        ctx, call, f"`{origin}()` reads the wall clock; "
                        "pass logical time explicitly"
                    )
                )
        return out


@register
class BuiltinHash(Rule):
    """DHS103 — builtin ``hash()`` outside a ``__hash__`` implementation."""

    code = "DHS103"
    name = "builtin-hash"
    rationale = (
        "Builtin `hash()` on str/bytes is salted per process "
        "(PYTHONHASHSEED), so any value derived from it differs between "
        "runs. Use `repro.hashing` families for content hashing; `hash()` "
        "is only legitimate inside `__hash__`, which never leaves the "
        "process."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        out: List[Violation] = []

        def visit(node: ast.AST, in_hash_method: bool) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                in_hash_method = node.name == "__hash__"
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
                and not in_hash_method
            ):
                out.append(
                    self.violation(
                        ctx, node, "builtin `hash()` is salted per process; "
                        "use a repro.hashing family for stable hashing"
                    )
                )
            for child in ast.iter_child_nodes(node):
                visit(child, in_hash_method)

        visit(ctx.tree, False)
        return out
