"""Observability rules (DHS7xx).

Every measurement the library makes — hop counts, probe totals, retry
budgets — flows through ``repro.obs``: spans carry per-operation
attribution, the :class:`~repro.obs.metrics.MetricsRegistry` aggregates
deterministically across ``DHS_JOBS`` workers, and the exporters render
both.  A stray ``print()`` inside the library bypasses all of that: it
is invisible to the registry, non-deterministic under process pools
(interleaved worker output), and unusable by the report tooling.  DHS701
keeps raw console output confined to the two places that own the
terminal: the CLI front-end (``repro.cli``) and the observability
package itself (``repro.obs``).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List

from tools.analyze.engine import FileContext, Rule, Violation, register
from tools.analyze.rules._imports import ImportTable

#: Direct console-output calls, resolved through import aliases.
_OUTPUT_CALLS = frozenset(
    {
        "print",
        "sys.stdout.write",
        "sys.stderr.write",
        "pprint.pprint",
        "pprint.pp",
    }
)

#: Module prefixes allowed to talk to the terminal directly.
_EXEMPT_PREFIXES = (("repro", "cli"), ("repro", "obs"))


def _calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


@register
class AdHocOutput(Rule):
    """DHS701 — direct console output in the library instead of repro.obs."""

    code = "DHS701"
    name = "ad-hoc-output"
    rationale = (
        "Library code must report through `repro.obs` — spans for "
        "per-operation attribution, `MetricsRegistry` for aggregates — "
        "not `print()`/`sys.stdout.write()`. Ad-hoc output is invisible "
        "to `snapshot()` merging, interleaves non-deterministically "
        "under `DHS_JOBS` worker pools, and never reaches the trace "
        "exporters or the report generator. Only the CLI front-end "
        "(`repro.cli`) and the observability package itself "
        "(`repro.obs`) may write to the terminal."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        if not ctx.in_package():
            return []
        parts = ctx.package_parts
        if any(parts[: len(prefix)] == prefix for prefix in _EXEMPT_PREFIXES):
            return []
        table = ImportTable(ctx.tree)
        out: List[Violation] = []
        for call in _calls(ctx.tree):
            origin = table.resolve(call.func)
            if origin in _OUTPUT_CALLS:
                out.append(
                    self.violation(
                        ctx,
                        call,
                        f"`{origin}()` bypasses repro.obs; record a metric "
                        "or span event instead (console output belongs to "
                        "repro.cli / repro.obs)",
                    )
                )
        return out
