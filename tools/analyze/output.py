"""Report renderers: text, json, SARIF 2.1.0, GitHub annotations.

``text`` and ``json`` are the human/scripting formats; ``sarif`` is
consumed by code-scanning UIs (uploaded as a CI artifact by the
``dataflow-lint`` workflow step); ``github`` emits
``::error file=...`` workflow commands so violations surface as inline
PR annotations.
"""

from __future__ import annotations

import json
from typing import Dict, List

from tools.analyze.engine import (
    PROJECT_REGISTRY,
    REGISTRY,
    Report,
    TOOL_VERSION,
    Violation,
)

__all__ = ["FORMATS", "render"]

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_meta(code: str) -> Dict[str, str]:
    rule_cls = REGISTRY.get(code) or PROJECT_REGISTRY.get(code)
    if rule_cls is None:
        return {"name": code, "rationale": ""}
    return {"name": rule_cls.name, "rationale": rule_cls.rationale}


def render_text(report: Report) -> str:
    lines = [violation.render() for violation in report.violations]
    lines.extend(report.errors)
    for problem in report.waiver_errors:
        lines.append(f"waiver problem: {problem}")
    counts = report.counts_by_code
    summary = ", ".join(f"{code}×{n}" for code, n in counts.items()) or "clean"
    lines.append(
        f"dhslint: {len(report.violations)} violation(s) "
        f"[{summary}], {report.suppressed} suppressed, "
        f"{report.files} file(s) checked"
    )
    if report.waived:
        lines.append(f"dhslint: {len(report.waived)} violation(s) waived")
    lookups = report.cache_hits + report.cache_misses
    if lookups:
        rate = 100.0 * report.cache_hits / lookups
        lines.append(
            f"dhslint: cache {report.cache_hits}/{lookups} hit(s) ({rate:.0f}%)"
        )
    if report.dataflow is not None:
        stats = ", ".join(f"{key}={value}" for key, value in sorted(report.dataflow.items()))
        lines.append(f"dhslint: dataflow [{stats}]")
    lines.append(f"dhslint: finished in {report.elapsed:.2f}s")
    return "\n".join(lines)


def _violation_dict(violation: Violation) -> Dict[str, object]:
    return {
        "code": violation.code,
        "message": violation.message,
        "path": violation.path,
        "line": violation.line,
        "col": violation.col,
    }


def render_json(report: Report) -> str:
    payload = {
        "violations": [_violation_dict(v) for v in report.violations],
        "waived": [_violation_dict(v) for v in report.waived],
        "errors": report.errors,
        "waiver_errors": report.waiver_errors,
        "counts": report.counts_by_code,
        "suppressed": report.suppressed,
        "files": report.files,
        "cache": {"hits": report.cache_hits, "misses": report.cache_misses},
        "dataflow": report.dataflow,
        "elapsed": round(report.elapsed, 4),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(report: Report) -> str:
    codes = sorted({v.code for v in report.violations})
    rules = []
    for code in codes:
        meta = _rule_meta(code)
        rules.append(
            {
                "id": code,
                "name": meta["name"],
                "shortDescription": {"text": meta["name"] or code},
                "fullDescription": {"text": meta["rationale"]},
                "defaultConfiguration": {"level": "error"},
            }
        )
    results = []
    for violation in report.violations:
        results.append(
            {
                "ruleId": violation.code,
                "ruleIndex": codes.index(violation.code),
                "level": "error",
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": violation.path.replace("\\", "/"),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": violation.line,
                                "startColumn": violation.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "dhslint",
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "version": TOOL_VERSION,
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": not report.errors,
                        "toolExecutionNotifications": [
                            {"level": "error", "message": {"text": err}}
                            for err in [*report.errors, *report.waiver_errors]
                        ],
                    }
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _escape_github(value: str) -> str:
    """Escape GitHub workflow-command data (order matters: %% first)."""
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def render_github(report: Report) -> str:
    lines: List[str] = []
    for violation in report.violations:
        lines.append(
            f"::error file={_escape_github(violation.path)}"
            f",line={violation.line},col={violation.col + 1}"
            f",title={violation.code}::{_escape_github(violation.message)}"
        )
    for err in report.errors:
        lines.append(f"::error ::{_escape_github(err)}")
    for problem in report.waiver_errors:
        lines.append(f"::error ::{_escape_github('waiver problem: ' + problem)}")
    lines.append(
        f"dhslint: {len(report.violations)} violation(s), "
        f"{len(report.waived)} waived, {report.files} file(s) checked"
    )
    return "\n".join(lines)


FORMATS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
    "github": render_github,
}


def render(report: Report, fmt: str) -> str:
    try:
        renderer = FORMATS[fmt]
    except KeyError:
        raise ValueError(f"unknown format {fmt!r}") from None
    return renderer(report)
