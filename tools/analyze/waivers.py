"""Per-code waiver file for dataflow findings.

A waiver acknowledges a known violation without silencing the rule
globally: it matches one rule code against a path substring, *must*
carry a justification, and *must* carry an expiry date so stale waivers
resurface instead of rotting.  Format (one waiver per line, ``#``
comments free-form)::

    # Shared-memory refactor tracking issue #42:
    DHS811  src/repro/core/registers.py  expires=2026-12-31  arrays are re-attached per worker, merge is sanctioned

Fields are whitespace-separated: ``CODE  PATH-SUBSTRING  expires=YYYY-MM-DD
REASON...``; an optional ``line=N`` field pins the waiver to one line.
Expired entries are reported as waiver errors and no longer waive.
"""

from __future__ import annotations

import datetime
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from tools.analyze.engine import Violation

__all__ = ["Waiver", "WaiverSet", "load_waivers"]

_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")


@dataclass(frozen=True)
class Waiver:
    """One acknowledged violation: code + path substring + expiry + reason."""

    code: str
    path_substring: str
    expires: datetime.date
    reason: str
    line: Optional[int] = None
    source_line: int = 0

    def covers(self, violation: Violation) -> bool:
        if violation.code != self.code:
            return False
        if self.path_substring not in violation.path:
            return False
        if self.line is not None and violation.line != self.line:
            return False
        return True


@dataclass
class WaiverSet:
    """Parsed waiver file plus the problems found while parsing/applying."""

    waivers: List[Waiver] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)
    today: datetime.date = field(default_factory=datetime.date.today)

    def matches(self, violation: Violation) -> bool:
        """Whether an *active* (unexpired) waiver covers ``violation``."""
        for waiver in self.waivers:
            if not waiver.covers(violation):
                continue
            if waiver.expires < self.today:
                self.problems.append(
                    f"expired waiver (line {waiver.source_line}) still matches "
                    f"{violation.code} at {violation.path}:{violation.line} — "
                    f"expired {waiver.expires.isoformat()}; fix or re-justify"
                )
                continue
            return True
        return False


def load_waivers(path: Path, today: Optional[datetime.date] = None) -> WaiverSet:
    """Parse a waiver file; malformed lines become ``problems``, not waivers."""
    waiver_set = WaiverSet()
    if today is not None:
        waiver_set.today = today
    if not path.is_file():
        return waiver_set
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 3:
            waiver_set.problems.append(
                f"{path}:{lineno}: waiver needs CODE PATH expires=DATE REASON"
            )
            continue
        code, path_substring = parts[0], parts[1]
        expires: Optional[datetime.date] = None
        pinned_line: Optional[int] = None
        reason_parts: List[str] = []
        for part in parts[2:]:
            if part.startswith("expires="):
                value = part[len("expires="):]
                if not _DATE_RE.match(value):
                    waiver_set.problems.append(
                        f"{path}:{lineno}: bad expires date {value!r} (YYYY-MM-DD)"
                    )
                    break
                expires = datetime.date.fromisoformat(value)
            elif part.startswith("line=") and not reason_parts:
                try:
                    pinned_line = int(part[len("line="):])
                except ValueError:
                    waiver_set.problems.append(f"{path}:{lineno}: bad line= field")
                    break
            else:
                reason_parts.append(part)
        else:
            if expires is None:
                waiver_set.problems.append(
                    f"{path}:{lineno}: waiver for {code} has no expires=YYYY-MM-DD"
                )
                continue
            if not reason_parts:
                waiver_set.problems.append(
                    f"{path}:{lineno}: waiver for {code} has no justification"
                )
                continue
            waiver_set.waivers.append(
                Waiver(
                    code=code,
                    path_substring=path_substring,
                    expires=expires,
                    reason=" ".join(reason_parts),
                    line=pinned_line,
                    source_line=lineno,
                )
            )
    return waiver_set
