"""Rule framework: registry, file contexts, suppressions, and the runner.

A rule is a subclass of :class:`Rule` with a unique ``code`` (``DHS101``
...), registered via the :func:`register` decorator.  The runner parses
each file once, hands every rule a :class:`FileContext`, and filters the
returned :class:`Violation` stream through inline suppressions
(``# dhslint: disable=DHS101,DHS301`` or ``# dhslint: disable=all`` on the
offending line).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

from tools.analyze.config import Config

_SUPPRESS_RE = re.compile(r"#\s*dhslint:\s*disable=([A-Za-z0-9,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule hit at a specific source location."""

    code: str
    message: str
    path: str
    line: int
    col: int

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True)
class FileContext:
    """Everything a rule needs to know about one parsed source file."""

    path: Path
    source: str
    tree: ast.Module
    config: Config
    #: Dotted module name when the file sits inside a package tree (walked
    #: up through ``__init__.py`` files), else ``None`` (standalone snippet).
    module: Optional[str]

    @property
    def package_parts(self) -> Tuple[str, ...]:
        """Dotted-path components, empty for standalone files."""
        return tuple(self.module.split(".")) if self.module else ()

    def in_package(self) -> bool:
        """Whether the file belongs to the configured root package."""
        parts = self.package_parts
        return bool(parts) and parts[0] == self.config.package


class Rule:
    """Base class for dhslint rules.

    Subclasses set ``code``/``name``/``rationale`` and implement
    :meth:`check`.  ``rationale`` doubles as documentation: it is surfaced
    by ``--list-rules`` and the rule catalogue generator.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            code=self.code,
            message=message,
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


#: All registered rules, keyed by code.
REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`REGISTRY` (codes are unique)."""
    if not rule_cls.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule_cls.code in REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def _suppressions(source: str) -> Dict[int, frozenset]:
    """Map line number -> set of suppressed codes (or ``{"all"}``)."""
    table: Dict[int, frozenset] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            codes = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            table[lineno] = codes
    return table


def resolve_module(path: Path) -> Optional[str]:
    """Dotted module name for ``path``, walking up while ``__init__.py`` exists."""
    path = path.resolve()
    if path.suffix != ".py":
        return None
    parts: List[str] = [] if path.name == "__init__.py" else [path.stem]
    directory = path.parent
    in_package = False
    while (directory / "__init__.py").is_file():
        in_package = True
        parts.append(directory.name)
        directory = directory.parent
    if not parts or not in_package:
        # A file outside any package tree has no dotted name; rules with
        # module-scoped applicability treat it as an unscoped snippet.
        return None
    return ".".join(reversed(parts))


@dataclass
class Report:
    """Aggregate result of one analyzer run."""

    violations: List[Violation] = field(default_factory=list)
    suppressed: int = 0
    files: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def counts_by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        return dict(sorted(counts.items()))


def analyze_file(
    path: Path, config: Config, module: Optional[str] = None
) -> Tuple[List[Violation], int]:
    """Run every enabled rule over one file.

    Returns ``(violations, suppressed_count)``.  ``module`` overrides the
    filesystem-derived dotted name (useful for fixtures).  Raises
    ``SyntaxError`` if the file does not parse.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    ctx = FileContext(
        path=path,
        source=source,
        tree=tree,
        config=config,
        module=module if module is not None else resolve_module(path),
    )
    suppress = _suppressions(source)
    kept: List[Violation] = []
    suppressed = 0
    for code, rule_cls in sorted(REGISTRY.items()):
        if code in config.disable:
            continue
        for violation in rule_cls().check(ctx):
            codes = suppress.get(violation.line, frozenset())
            if "all" in codes or violation.code in codes:
                suppressed += 1
            else:
                kept.append(violation)
    kept.sort(key=lambda v: (v.line, v.col, v.code))
    return kept, suppressed


def iter_python_files(paths: Iterable[Path], config: Config) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to analyze."""
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in candidate.parts for part in config.exclude):
                    yield candidate
        elif path.suffix == ".py":
            yield path


def analyze_paths(paths: Iterable[Path], config: Config) -> Report:
    """Analyze every Python file under ``paths`` and aggregate the results."""
    report = Report()
    for file_path in iter_python_files(paths, config):
        report.files += 1
        try:
            violations, suppressed = analyze_file(file_path, config)
        except SyntaxError as exc:
            report.errors.append(f"{file_path}: syntax error: {exc.msg} (line {exc.lineno})")
            continue
        report.violations.extend(violations)
        report.suppressed += suppressed
    return report
