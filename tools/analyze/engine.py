"""Rule framework: registry, file contexts, suppressions, and the runner.

A rule is a subclass of :class:`Rule` with a unique ``code`` (``DHS101``
...), registered via the :func:`register` decorator.  The runner parses
each file once, hands every rule a :class:`FileContext`, and filters the
returned :class:`Violation` stream through inline suppressions
(``# dhslint: disable=DHS101,DHS301`` or ``# dhslint: disable=all``).
A suppression comment is anchored to the *full line span* of the
statement it sits on, so a comment on the first line of a multi-line
call (or on a decorator) also covers violations reported on the
continuation lines.

Whole-program (dataflow) rules subclass :class:`ProjectRule` instead and
receive a ``ProjectContext`` — a symbol table and call graph built over
every analyzed file at once (see :mod:`tools.analyze.dataflow`).
"""

from __future__ import annotations

import ast
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Tuple, Type

from tools.analyze.config import Config

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dataflow imports engine)
    from tools.analyze.cache import AnalysisCache
    from tools.analyze.dataflow.project import ProjectContext
    from tools.analyze.waivers import WaiverSet

#: Bumped whenever rule behaviour changes; invalidates `.dhslint_cache.json`.
TOOL_VERSION = "2.0"

_SUPPRESS_RE = re.compile(r"#\s*dhslint:\s*disable=([A-Za-z0-9,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule hit at a specific source location."""

    code: str
    message: str
    path: str
    line: int
    col: int

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True)
class FileContext:
    """Everything a rule needs to know about one parsed source file."""

    path: Path
    source: str
    tree: ast.Module
    config: Config
    #: Dotted module name when the file sits inside a package tree (walked
    #: up through ``__init__.py`` files), else ``None`` (standalone snippet).
    module: Optional[str]

    @property
    def package_parts(self) -> Tuple[str, ...]:
        """Dotted-path components, empty for standalone files."""
        return tuple(self.module.split(".")) if self.module else ()

    def in_package(self) -> bool:
        """Whether the file belongs to the configured root package."""
        parts = self.package_parts
        return bool(parts) and parts[0] == self.config.package

    def is_package_init(self) -> bool:
        """Whether this file is a package ``__init__.py``."""
        return self.path.name == "__init__.py"


class Rule:
    """Base class for dhslint per-file rules.

    Subclasses set ``code``/``name``/``rationale`` and implement
    :meth:`check`.  ``rationale`` doubles as documentation: it is surfaced
    by ``--list-rules`` and the rule catalogue generator.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            code=self.code,
            message=message,
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


class ProjectRule:
    """Base class for whole-program (dataflow) rules.

    Unlike :class:`Rule`, a project rule sees every analyzed file at once
    through a ``ProjectContext`` (symbol table + call graph).  The heavy
    analyses run once per context and are memoized there; each rule class
    filters the shared result stream down to its own code.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""

    def check_project(self, project: "ProjectContext") -> Iterable[Violation]:
        raise NotImplementedError


#: All registered per-file rules, keyed by code.
REGISTRY: Dict[str, Type[Rule]] = {}

#: All registered whole-program rules, keyed by code.
PROJECT_REGISTRY: Dict[str, Type[ProjectRule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`REGISTRY` (codes are unique)."""
    if not rule_cls.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule_cls.code in REGISTRY or rule_cls.code in PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def register_project(rule_cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a rule to :data:`PROJECT_REGISTRY`."""
    if not rule_cls.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule_cls.code in PROJECT_REGISTRY or rule_cls.code in REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    PROJECT_REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


_HEADER_STMTS = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.If,
    ast.While,
    ast.For,
    ast.AsyncFor,
    ast.With,
    ast.AsyncWith,
    ast.Try,
)


def _statement_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    """Line spans of every statement, decorators included.

    Compound statements (defs, classes, loops, ...) contribute their
    *header* only — a suppression on a decorator covers the ``def`` line
    but not the whole body; simple statements contribute their full span
    so a comment on the first line of a multi-line call also covers the
    continuation lines.
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            start = node.lineno
            decorators = getattr(node, "decorator_list", [])
            if decorators:
                start = min(start, min(d.lineno for d in decorators))
            if isinstance(node, _HEADER_STMTS):
                first_body_line = node.body[0].lineno if node.body else node.lineno
                end = max(start, first_body_line - 1) if first_body_line > node.lineno else node.lineno
            else:
                end = getattr(node, "end_lineno", None) or node.lineno
            spans.append((start, end))
        elif isinstance(node, ast.ExceptHandler):
            spans.append((node.lineno, node.lineno))
    return spans


def suppression_table(source: str, tree: Optional[ast.Module] = None) -> Dict[int, frozenset]:
    """Map line number -> set of suppressed codes (or ``{"all"}``).

    With a parsed ``tree``, each suppression comment is widened to the
    full span of the (innermost) statement containing it.
    """
    comments: Dict[int, frozenset] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            codes = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            comments[lineno] = codes
    if tree is None or not comments:
        return comments
    spans = _statement_spans(tree)
    table: Dict[int, set] = {line: set(codes) for line, codes in comments.items()}
    for line, codes in comments.items():
        containing = [s for s in spans if s[0] <= line <= s[1]]
        if not containing:
            continue
        # Innermost: latest start, then tightest end.
        start, end = max(containing, key=lambda s: (s[0], -s[1]))
        for covered in range(start, end + 1):
            table.setdefault(covered, set()).update(codes)
    return {line: frozenset(codes) for line, codes in table.items()}


def resolve_module(path: Path) -> Optional[str]:
    """Dotted module name for ``path``, walking up while ``__init__.py`` exists."""
    path = path.resolve()
    if path.suffix != ".py":
        return None
    parts: List[str] = [] if path.name == "__init__.py" else [path.stem]
    directory = path.parent
    in_package = False
    while (directory / "__init__.py").is_file():
        in_package = True
        parts.append(directory.name)
        directory = directory.parent
    if not parts or not in_package:
        # A file outside any package tree has no dotted name; rules with
        # module-scoped applicability treat it as an unscoped snippet.
        return None
    return ".".join(reversed(parts))


@dataclass
class Report:
    """Aggregate result of one analyzer run."""

    violations: List[Violation] = field(default_factory=list)
    suppressed: int = 0
    files: int = 0
    errors: List[str] = field(default_factory=list)
    #: Violations matched (and silenced) by an active waiver.
    waived: List[Violation] = field(default_factory=list)
    #: Waiver-file problems (missing reason, expired entries still matching).
    waiver_errors: List[str] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    #: Wall-clock seconds for the whole run (set by :func:`analyze_paths`).
    elapsed: float = 0.0
    #: Summary statistics of the dataflow pass, when it ran.
    dataflow: Optional[Dict[str, int]] = None

    @property
    def counts_by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        return dict(sorted(counts.items()))


def _run_file_rules(ctx: FileContext) -> Tuple[List[Violation], int]:
    """Run every enabled per-file rule over one parsed file."""
    suppress = suppression_table(ctx.source, ctx.tree)
    kept: List[Violation] = []
    suppressed = 0
    for code, rule_cls in sorted(REGISTRY.items()):
        if code in ctx.config.disable:
            continue
        for violation in rule_cls().check(ctx):
            codes = suppress.get(violation.line, frozenset())
            if "all" in codes or violation.code in codes:
                suppressed += 1
            else:
                kept.append(violation)
    kept.sort(key=lambda v: (v.line, v.col, v.code))
    return kept, suppressed


def analyze_file(
    path: Path, config: Config, module: Optional[str] = None
) -> Tuple[List[Violation], int]:
    """Run every enabled per-file rule over one file.

    Returns ``(violations, suppressed_count)``.  ``module`` overrides the
    filesystem-derived dotted name (useful for fixtures).  Raises
    ``SyntaxError`` if the file does not parse.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    ctx = FileContext(
        path=path,
        source=source,
        tree=tree,
        config=config,
        module=module if module is not None else resolve_module(path),
    )
    return _run_file_rules(ctx)


def iter_python_files(paths: Iterable[Path], config: Config) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to analyze."""
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in candidate.parts for part in config.exclude):
                    yield candidate
        elif path.suffix == ".py":
            yield path


def analyze_paths(
    paths: Iterable[Path],
    config: Config,
    *,
    dataflow: bool = False,
    cache: Optional["AnalysisCache"] = None,
    waivers: Optional["WaiverSet"] = None,
) -> Report:
    """Analyze every Python file under ``paths`` and aggregate the results.

    ``dataflow=True`` additionally builds a :class:`ProjectContext`
    (symbol table + call graph over every file) and runs the registered
    whole-program rules (DHS8xx).  ``cache`` reuses per-file rule results
    for files whose content hash is unchanged; the dataflow pass itself
    is never cached (it is whole-program by construction).  ``waivers``
    moves matching violations into ``report.waived``.
    """
    started = time.perf_counter()
    report = Report()
    contexts: List[FileContext] = []
    for file_path in iter_python_files(paths, config):
        report.files += 1
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:  # pragma: no cover - unreadable file
            report.errors.append(f"{file_path}: {exc}")
            continue
        cached = cache.lookup(file_path, source) if cache is not None else None
        ctx: Optional[FileContext] = None
        if dataflow or cached is None:
            try:
                tree = ast.parse(source, filename=str(file_path))
            except SyntaxError as exc:
                report.errors.append(
                    f"{file_path}: syntax error: {exc.msg} (line {exc.lineno})"
                )
                continue
            ctx = FileContext(
                path=file_path,
                source=source,
                tree=tree,
                config=config,
                module=resolve_module(file_path),
            )
            contexts.append(ctx)
        if cached is not None:
            report.cache_hits += 1
            report.violations.extend(cached[0])
            report.suppressed += cached[1]
        else:
            assert ctx is not None
            violations, suppressed = _run_file_rules(ctx)
            if cache is not None:
                report.cache_misses += 1
                cache.store(file_path, source, violations, suppressed)
            report.violations.extend(violations)
            report.suppressed += suppressed
    if dataflow:
        _run_project_rules(contexts, config, report)
    if waivers is not None:
        kept: List[Violation] = []
        for violation in report.violations:
            if waivers.matches(violation):
                report.waived.append(violation)
            else:
                kept.append(violation)
        report.violations = kept
        report.waiver_errors.extend(waivers.problems)
    if cache is not None:
        cache.flush()
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    report.elapsed = time.perf_counter() - started
    return report


def _run_project_rules(
    contexts: List[FileContext], config: Config, report: Report
) -> None:
    """Build the project context and run every enabled whole-program rule."""
    from tools.analyze.dataflow import build_project  # lazy: registers rules

    project = build_project(contexts, config)
    tables = {
        str(ctx.path): suppression_table(ctx.source, ctx.tree) for ctx in contexts
    }
    for code, rule_cls in sorted(PROJECT_REGISTRY.items()):
        if code in config.disable:
            continue
        for violation in rule_cls().check_project(project):
            codes = tables.get(violation.path, {}).get(violation.line, frozenset())
            if "all" in codes or violation.code in codes:
                report.suppressed += 1
            else:
                report.violations.append(violation)
    report.dataflow = project.stats()
