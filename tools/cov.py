"""Stdlib line-coverage runner for the ``repro`` package.

Usage::

    PYTHONPATH=src python tools/cov.py [--json COVERAGE.json] \
        [--fail-under PCT] [pytest args...]

Runs pytest under a ``sys.settrace`` hook that records executed lines in
``src/repro`` only (everything else stays untraced at the call level, so
the slowdown is modest), then compares them against the executable-line
set derived from each module's compiled code objects.  No third-party
coverage package is required, which keeps the tool usable in minimal
containers; CI uses ``pytest-cov`` for the enforced gate and this script
is the local, dependency-free equivalent.

Caveats: work dispatched to ``DHS_JOBS`` worker *processes* is not
traced (the hook is per-process), and lines only reachable inside such
workers will read as uncovered — the determinism tests exercise the same
code serially, so in practice this costs a fraction of a percent.

The ``--json`` dump feeds ``tools/make_report.py``'s coverage table::

    {"total": {"statements": N, "covered": N, "percent": P},
     "packages": {"repro.core": {...}, ...},
     "files": {"src/repro/core/count.py": {...}, ...}}
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import threading
import types
from typing import Dict, Set

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def executable_lines(path: pathlib.Path) -> Set[int]:
    """Line numbers carrying bytecode anywhere in ``path``'s code objects."""
    code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    lines: Set[int] = set()
    stack = [code]
    while stack:
        current = stack.pop()
        for _, _, line in current.co_lines():
            if line is not None:
                lines.add(line)
        for const in current.co_consts:
            if isinstance(const, types.CodeType):
                stack.append(const)
    return lines


class LineCollector:
    """Records executed lines for files whose path contains ``src/repro``."""

    def __init__(self) -> None:
        self.executed: Dict[str, Set[int]] = {}

    def _wanted(self, filename: str) -> bool:
        return "src/repro/" in filename or filename.startswith("src/repro")

    def _global_trace(self, frame, event, arg):  # type: ignore[no-untyped-def]
        if event != "call" or not self._wanted(frame.f_code.co_filename):
            return None
        lines = self.executed.setdefault(frame.f_code.co_filename, set())
        lines.add(frame.f_lineno)

        def local_trace(frame, event, arg):  # type: ignore[no-untyped-def]
            if event == "line":
                lines.add(frame.f_lineno)
            return local_trace

        return local_trace

    def start(self) -> None:
        threading.settrace(self._global_trace)
        sys.settrace(self._global_trace)

    def stop(self) -> None:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]

    def lines_for(self, path: pathlib.Path) -> Set[int]:
        """Executed lines for ``path`` under any spelling of its name."""
        resolved = path.resolve()
        merged: Set[int] = set()
        for filename, lines in self.executed.items():
            if pathlib.Path(filename).resolve() == resolved:
                merged |= lines
        return merged


def measure(collector: LineCollector, source: pathlib.Path) -> dict:
    """Build the coverage report dict for every ``.py`` file under ``source``."""
    files: Dict[str, dict] = {}
    packages: Dict[str, dict] = {}
    total_statements = 0
    total_covered = 0
    for path in sorted(source.rglob("*.py")):
        statements = executable_lines(path)
        covered = collector.lines_for(path) & statements
        rel = path.relative_to(_REPO_ROOT) if path.is_relative_to(_REPO_ROOT) else path
        parts = path.relative_to(source).parts
        package = "repro" if len(parts) == 1 else f"repro.{parts[0]}"
        entry = {
            "statements": len(statements),
            "covered": len(covered),
            "percent": round(100.0 * len(covered) / len(statements), 2)
            if statements
            else 100.0,
            "missing": sorted(statements - covered),
        }
        files[str(rel)] = entry
        bucket = packages.setdefault(package, {"statements": 0, "covered": 0})
        bucket["statements"] += len(statements)
        bucket["covered"] += len(covered)
        total_statements += len(statements)
        total_covered += len(covered)
    for bucket in packages.values():
        bucket["percent"] = (
            round(100.0 * bucket["covered"] / bucket["statements"], 2)
            if bucket["statements"]
            else 100.0
        )
    return {
        "source": str(source.relative_to(_REPO_ROOT)),
        "total": {
            "statements": total_statements,
            "covered": total_covered,
            "percent": round(100.0 * total_covered / total_statements, 2)
            if total_statements
            else 100.0,
        },
        "packages": dict(sorted(packages.items())),
        "files": files,
    }


def render_table(report: dict) -> str:
    """Human-readable per-package summary."""
    width = max(len(name) for name in report["packages"]) if report["packages"] else 8
    lines = [f"{'package':<{width}}  stmts  miss  cover"]
    for name, bucket in report["packages"].items():
        miss = bucket["statements"] - bucket["covered"]
        lines.append(
            f"{name:<{width}}  {bucket['statements']:>5}  {miss:>4}  "
            f"{bucket['percent']:>5.1f}%"
        )
    total = report["total"]
    miss = total["statements"] - total["covered"]
    lines.append(
        f"{'TOTAL':<{width}}  {total['statements']:>5}  {miss:>4}  "
        f"{total['percent']:>5.1f}%"
    )
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--source", default="src/repro")
    parser.add_argument("--json", dest="json_path", default=None)
    parser.add_argument("--fail-under", type=float, default=None)
    parser.add_argument("pytest_args", nargs=argparse.REMAINDER)
    args = parser.parse_args(argv[1:])

    import pytest

    source = (_REPO_ROOT / args.source).resolve()
    collector = LineCollector()
    collector.start()
    try:
        exit_code = pytest.main(args.pytest_args or ["-x", "-q"])
    finally:
        collector.stop()
    report = measure(collector, source)
    print(render_table(report))
    if args.json_path:
        pathlib.Path(args.json_path).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json_path}")
    if exit_code:
        return int(exit_code)
    if args.fail_under is not None and report["total"]["percent"] < args.fail_under:
        print(
            f"coverage {report['total']['percent']:.2f}% is below the "
            f"--fail-under floor of {args.fail_under:.2f}%"
        )
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
