"""Developer tooling for the DHS reproduction (not shipped with the package)."""
