"""Calibrate the super-LogLog truncation constant ``alpha-tilde``.

Durand & Flajolet's truncation rule keeps only the ``m0 = floor(0.7 * m)``
smallest register values; the resulting raw estimator
``m0 * 2^(sum*/m0)`` needs a modified constant to stay unbiased.  The
closed form is unwieldy, so — like most production implementations — we
calibrate it by register-level Monte Carlo once and ship the table in
``repro.sketches.constants``.

Register-level simulation: with n items spread over m buckets, each
register holds the max of ``N ~ Poisson(n/m)`` geometric(1/2) ranks, whose
CDF is ``(1 - 2^-x)^N``; we sample it by inverse transform.  This is exact
under Poissonization and lets us calibrate m = 16384 in seconds.

Usage:  python tools/calibrate_sll.py  [max_log2_m]
"""

from __future__ import annotations

import sys

import numpy as np

THETA0 = 0.7
LAMBDA = 4096.0  # items per bucket; deep in the asymptotic regime
TARGET_DRAWS = 600_000  # total registers per m => mean accurate to ~0.1%


def sample_registers(rng: np.random.Generator, trials: int, m: int) -> np.ndarray:
    """Sample a (trials, m) array of LogLog register values."""
    n_items = rng.poisson(LAMBDA, size=(trials, m)).astype(np.float64)
    n_items = np.maximum(n_items, 1.0)
    u = rng.random(size=(trials, m))
    # M = ceil(-log2(1 - u^(1/N)))
    inner = 1.0 - np.power(u, 1.0 / n_items)
    inner = np.clip(inner, 1e-300, 1.0)
    return np.ceil(-np.log2(inner))


def raw_truncated_estimate(registers: np.ndarray, m0: int) -> np.ndarray:
    """Raw sLL estimate per trial, before the alpha-tilde correction."""
    smallest = np.sort(registers, axis=1)[:, :m0]
    return m0 * np.exp2(smallest.mean(axis=1))


def calibrate(max_log2_m: int = 14, seed: int = 20060401) -> dict[int, tuple[float, float]]:
    """Return {m: (alpha_tilde, empirical_std_factor)}."""
    rng = np.random.default_rng(seed)
    table: dict[int, tuple[float, float]] = {}
    for log2_m in range(max_log2_m + 1):
        m = 1 << log2_m
        m0 = max(1, int(THETA0 * m))
        trials = max(64, TARGET_DRAWS // m)
        raw = raw_truncated_estimate(sample_registers(rng, trials, m), m0)
        alpha = LAMBDA * m / raw.mean()
        rel_std = np.std(raw * alpha / (LAMBDA * m))
        table[m] = (alpha, rel_std * np.sqrt(m))
        print(f"m={m:6d}  m0={m0:6d}  trials={trials:6d}  "
              f"alpha_tilde={alpha:.6f}  std*sqrt(m)={rel_std * np.sqrt(m):.4f}")
    return table


def main() -> None:
    max_log2_m = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    table = calibrate(max_log2_m)
    print("\nSLL_ALPHA_TILDE = {")
    for m, (alpha, _) in table.items():
        print(f"    {m}: {alpha:.6f},")
    print("}")


if __name__ == "__main__":
    main()
