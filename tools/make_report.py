"""Aggregate archived benchmark tables into one REPORT.md.

Usage:  python tools/make_report.py [results_dir] [output_path]

Collects every ``benchmarks/results/*.txt`` produced by a
``pytest benchmarks/ --benchmark-only`` run into a single markdown file
with a small table of contents — handy for attaching a full reproduction
run to an issue or a paper-review response.  A perf-microbenchmark table
(from the repo-root ``BENCH_perf.json`` trajectory, when present) and a
dhslint summary (rule counts, suppressions) are appended so the hot-path
throughput and static-analysis trends are visible alongside the measured
numbers.
"""

from __future__ import annotations

import json
import pathlib
import sys

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

#: Presentation order (anything not listed is appended alphabetically).
PREFERRED_ORDER = [
    "insertion_costs",
    "table2_counting",
    "scalability",
    "accuracy_vs_m",
    "table3_histograms",
    "table3_bucket_independence",
    "histogram_accuracy",
    "histogram_types",
    "query_opt",
    "baselines",
    "multidim",
    "churn_policies",
    "failure_robustness",
    "fault_matrix",
    "ablation_retries",
    "ablation_replication",
    "ablation_bitshift",
    "overlay_agnosticism",
]


def perf_summary(bench_path: pathlib.Path) -> list[str]:
    """Markdown lines rendering the ``BENCH_perf.json`` trajectory.

    Returns an empty list when the file is absent (perf tracking is
    optional for partial checkouts); see benchmarks/perf/run.py for the
    file's schema and docs/PERFORMANCE.md for how to read it.
    """
    if not bench_path.is_file():
        return []
    report = json.loads(bench_path.read_text())
    benchmarks = report.get("benchmarks", {})
    if not benchmarks:
        return []
    hot_path = {
        name: entry
        for name, entry in benchmarks.items()
        if not name.startswith("parallel_scaling/")
        and "overhead_vs_disabled_pct" not in entry
    }
    traced = {
        name: entry
        for name, entry in benchmarks.items()
        if "overhead_vs_disabled_pct" in entry
    }
    scaling = {
        name: entry
        for name, entry in benchmarks.items()
        if name.startswith("parallel_scaling/")
    }
    lines = [
        "## perf_microbenchmarks",
        "",
        f"`python benchmarks/perf/run.py --preset {report.get('preset', '?')}` "
        f"(python {report.get('python', '?')}, seed {report.get('seed', '?')}) — "
        "see docs/PERFORMANCE.md.",
        "",
        "| benchmark | ops/sec | hops/op | seconds |",
        "|---|---:|---:|---:|",
    ]
    for name in sorted(hot_path):
        entry = hot_path[name]
        speedup = entry.get("speedup_vs_scalar")
        suffix = f" ({speedup}x vs scalar)" if speedup is not None else ""
        lines.append(
            f"| {name}{suffix} | {entry['ops_per_sec']:,.1f} "
            f"| {entry['hops_per_op']:.3f} | {entry['seconds']:.3f} |"
        )
    lines.append("")
    if traced:
        lines.extend(
            [
                "### traced modes",
                "",
                "The same workload run with spans + metrics enabled; the",
                "overhead column is an in-process A/B comparison that",
                "`benchmarks/perf/check.py` caps at 25% "
                "(see docs/OBSERVABILITY.md).",
                "",
                "| benchmark | ops/sec enabled | ops/sec disabled | overhead | spans/op |",
                "|---|---:|---:|---:|---:|",
            ]
        )
        for name in sorted(traced):
            entry = traced[name]
            lines.append(
                f"| {name} | {entry['ops_per_sec']:,.1f} "
                f"| {entry['disabled_ops_per_sec']:,.1f} "
                f"| {entry['overhead_vs_disabled_pct']:+.1f}% "
                f"| {entry.get('spans_per_op', 0):,.1f} |"
            )
        lines.append("")
    if scaling:
        serial = next(
            (entry for entry in scaling.values() if entry.get("jobs") == 1), None
        )
        lines.extend(
            [
                "### parallel_scaling",
                "",
                "Accuracy-sweep wall clock at several `DHS_JOBS` widths; every",
                "width must reproduce the serial rows bit for bit (the",
                "`identical` column is a hard CI gate in "
                "`benchmarks/perf/check.py`).",
                "",
                "| workers | seconds | cells/sec | speedup vs serial | identical |",
                "|---:|---:|---:|---:|---|",
            ]
        )
        for name in sorted(scaling, key=lambda n: scaling[n].get("jobs", 0)):
            entry = scaling[name]
            if serial is not None and entry["seconds"] > 0:
                speedup_text = f"{serial['seconds'] / entry['seconds']:.2f}x"
            else:
                speedup_text = "-"
            lines.append(
                f"| {entry.get('jobs', '?')} | {entry['seconds']:.3f} "
                f"| {entry['ops_per_sec']:,.3f} | {speedup_text} "
                f"| {'yes' if entry.get('identical_to_serial') else 'NO'} |"
            )
        lines.append("")
    return lines


def coverage_summary(coverage_path: pathlib.Path) -> list[str]:
    """Markdown lines rendering the ``COVERAGE.json`` per-package table.

    The file is produced by ``tools/cov.py`` (stdlib tracer, no
    third-party deps); CI enforces the same floor with ``pytest-cov``.
    Returns an empty list when the file is absent.
    """
    if not coverage_path.is_file():
        return []
    report = json.loads(coverage_path.read_text())
    total = report.get("total", {})
    lines = [
        "## test_coverage",
        "",
        f"`PYTHONPATH=src python tools/cov.py --json COVERAGE.json` over "
        f"`{report.get('source', 'src/repro')}` — "
        f"{total.get('covered', 0)}/{total.get('statements', 0)} statements "
        f"({total.get('percent', 0.0):.1f}%). CI gates the tier-1 run with "
        "`--cov=repro --cov-fail-under=94`.",
        "",
        "| package | statements | missed | coverage |",
        "|---|---:|---:|---:|",
    ]
    for name, bucket in report.get("packages", {}).items():
        missed = bucket["statements"] - bucket["covered"]
        lines.append(
            f"| {name} | {bucket['statements']} | {missed} "
            f"| {bucket['percent']:.1f}% |"
        )
    missed = total.get("statements", 0) - total.get("covered", 0)
    lines.append(
        f"| **total** | {total.get('statements', 0)} | {missed} "
        f"| {total.get('percent', 0.0):.1f}% |"
    )
    lines.append("")
    return lines


def observability_summary() -> list[str]:
    """Markdown lines from one traced run of the golden scenario.

    Embeds the metric snapshot and the paper-style (Fig. 7) per-interval
    load table so the report shows *how* the measured numbers were
    obtained, not just the numbers.  Skipped (empty list) when the
    package is not importable from this checkout.
    """
    try:
        sys.path.insert(0, str(_REPO_ROOT / "src"))
        from repro.experiments.tracing import format_trace, run_traced_count
    except ImportError:
        return []
    run = run_traced_count()
    text = format_trace(run, max_spans=24)
    return [
        "## observability",
        "",
        "`python -m repro trace` — fixed-seed traced count "
        f"({run.scenario.n_nodes} nodes, {run.scenario.trials} trials, "
        f"{len(run.spans)} spans; fixture: `tests/obs/golden_trace.jsonl`). "
        "See docs/OBSERVABILITY.md.",
        "",
        "```",
        text.rstrip(),
        "```",
        "",
    ]


def dhslint_summary(source_dir: pathlib.Path) -> list[str]:
    """Markdown lines summarizing a dhslint run over ``source_dir``."""
    from tools.analyze import analyze_paths, load_config

    config = load_config(source_dir)
    report = analyze_paths([source_dir], config, dataflow=True)
    try:
        shown = source_dir.resolve().relative_to(_REPO_ROOT)
    except ValueError:
        shown = source_dir
    lines = [
        "## static_analysis",
        "",
        f"`python -m tools.analyze --dataflow {shown}` — "
        f"{len(report.violations)} violation(s), {report.suppressed} "
        f"suppression(s), {len(report.waived)} waived, {report.files} "
        f"file(s) checked in {report.elapsed:.2f}s.",
        "",
    ]
    if report.counts_by_code:
        lines.append("| rule | violations |")
        lines.append("|---|---|")
        for code, count in report.counts_by_code.items():
            lines.append(f"| {code} | {count} |")
        lines.append("")
        for violation in report.violations:
            lines.append(f"- `{violation.render()}`")
        lines.append("")
    if report.dataflow:
        lines.append(
            "Whole-program dataflow (RNG-taint, worker shared-state, purity):"
        )
        lines.append("")
        lines.append("| dataflow metric | value |")
        lines.append("|---|---|")
        for key, value in sorted(report.dataflow.items()):
            lines.append(f"| {key.replace('_', ' ')} | {value} |")
        lines.append("")
    return lines


def build_report(results_dir: pathlib.Path) -> str:
    """Render all archived result tables as one markdown document."""
    available = {path.stem: path for path in sorted(results_dir.glob("*.txt"))}
    if not available:
        raise FileNotFoundError(
            f"no result files in {results_dir}; run "
            "'pytest benchmarks/ --benchmark-only' first"
        )
    ordered = [name for name in PREFERRED_ORDER if name in available]
    ordered += [name for name in sorted(available) if name not in ordered]

    lines = [
        "# Reproduction run report",
        "",
        "Generated from `benchmarks/results/` — see EXPERIMENTS.md for the",
        "paper-vs-measured discussion of each table.",
        "",
        "## Contents",
        "",
    ]
    repo_root = results_dir.parent.parent
    perf_lines = perf_summary(repo_root / "BENCH_perf.json")
    coverage_lines = coverage_summary(repo_root / "COVERAGE.json")
    obs_lines = observability_summary()
    for name in ordered:
        lines.append(f"- [{name}](#{name.replace('_', '-')})")
    if perf_lines:
        lines.append("- [perf_microbenchmarks](#perf-microbenchmarks)")
    if obs_lines:
        lines.append("- [observability](#observability)")
    if coverage_lines:
        lines.append("- [test_coverage](#test-coverage)")
    lines.append("- [static_analysis](#static-analysis)")
    lines.append("")
    for name in ordered:
        lines.append(f"## {name}")
        lines.append("")
        lines.append("```")
        lines.append(available[name].read_text().rstrip())
        lines.append("```")
        lines.append("")
    lines.extend(perf_lines)
    lines.extend(obs_lines)
    lines.extend(coverage_lines)
    source_dir = repo_root / "src" / "repro"
    if source_dir.is_dir():
        lines.extend(dhslint_summary(source_dir))
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    results_dir = pathlib.Path(argv[1]) if len(argv) > 1 else (
        pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "results"
    )
    output = pathlib.Path(argv[2]) if len(argv) > 2 else (
        results_dir.parent / "REPORT.md"
    )
    output.write_text(build_report(results_dir))
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
