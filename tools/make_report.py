"""Aggregate archived benchmark tables into one REPORT.md.

Usage:  python tools/make_report.py [results_dir] [output_path]

Collects every ``benchmarks/results/*.txt`` produced by a
``pytest benchmarks/ --benchmark-only`` run into a single markdown file
with a small table of contents — handy for attaching a full reproduction
run to an issue or a paper-review response.
"""

from __future__ import annotations

import pathlib
import sys

#: Presentation order (anything not listed is appended alphabetically).
PREFERRED_ORDER = [
    "insertion_costs",
    "table2_counting",
    "scalability",
    "accuracy_vs_m",
    "table3_histograms",
    "table3_bucket_independence",
    "histogram_accuracy",
    "histogram_types",
    "query_opt",
    "baselines",
    "multidim",
    "churn_policies",
    "failure_robustness",
    "ablation_retries",
    "ablation_replication",
    "ablation_bitshift",
    "overlay_agnosticism",
]


def build_report(results_dir: pathlib.Path) -> str:
    """Render all archived result tables as one markdown document."""
    available = {path.stem: path for path in sorted(results_dir.glob("*.txt"))}
    if not available:
        raise FileNotFoundError(
            f"no result files in {results_dir}; run "
            "'pytest benchmarks/ --benchmark-only' first"
        )
    ordered = [name for name in PREFERRED_ORDER if name in available]
    ordered += [name for name in sorted(available) if name not in ordered]

    lines = [
        "# Reproduction run report",
        "",
        "Generated from `benchmarks/results/` — see EXPERIMENTS.md for the",
        "paper-vs-measured discussion of each table.",
        "",
        "## Contents",
        "",
    ]
    for name in ordered:
        lines.append(f"- [{name}](#{name.replace('_', '-')})")
    lines.append("")
    for name in ordered:
        lines.append(f"## {name}")
        lines.append("")
        lines.append("```")
        lines.append(available[name].read_text().rstrip())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    results_dir = pathlib.Path(argv[1]) if len(argv) > 1 else (
        pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "results"
    )
    output = pathlib.Path(argv[2]) if len(argv) > 2 else (
        results_dir.parent / "REPORT.md"
    )
    output.write_text(build_report(results_dir))
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
