"""Aggregate archived benchmark tables into one REPORT.md.

Usage:  python tools/make_report.py [results_dir] [output_path]

Collects every ``benchmarks/results/*.txt`` produced by a
``pytest benchmarks/ --benchmark-only`` run into a single markdown file
with a small table of contents — handy for attaching a full reproduction
run to an issue or a paper-review response.  A perf-microbenchmark table
(from the repo-root ``BENCH_perf.json`` trajectory, when present) and a
dhslint summary (rule counts, suppressions) are appended so the hot-path
throughput and static-analysis trends are visible alongside the measured
numbers.
"""

from __future__ import annotations

import json
import pathlib
import sys

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

#: Presentation order (anything not listed is appended alphabetically).
PREFERRED_ORDER = [
    "insertion_costs",
    "table2_counting",
    "scalability",
    "accuracy_vs_m",
    "table3_histograms",
    "table3_bucket_independence",
    "histogram_accuracy",
    "histogram_types",
    "query_opt",
    "baselines",
    "multidim",
    "churn_policies",
    "failure_robustness",
    "fault_matrix",
    "ablation_retries",
    "ablation_replication",
    "ablation_bitshift",
    "overlay_agnosticism",
]


def perf_summary(bench_path: pathlib.Path) -> list[str]:
    """Markdown lines rendering the ``BENCH_perf.json`` trajectory.

    Returns an empty list when the file is absent (perf tracking is
    optional for partial checkouts); see benchmarks/perf/run.py for the
    file's schema and docs/PERFORMANCE.md for how to read it.
    """
    if not bench_path.is_file():
        return []
    report = json.loads(bench_path.read_text())
    benchmarks = report.get("benchmarks", {})
    if not benchmarks:
        return []
    hot_path = {
        name: entry
        for name, entry in benchmarks.items()
        if not name.startswith("parallel_scaling/")
    }
    scaling = {
        name: entry
        for name, entry in benchmarks.items()
        if name.startswith("parallel_scaling/")
    }
    lines = [
        "## perf_microbenchmarks",
        "",
        f"`python benchmarks/perf/run.py --preset {report.get('preset', '?')}` "
        f"(python {report.get('python', '?')}, seed {report.get('seed', '?')}) — "
        "see docs/PERFORMANCE.md.",
        "",
        "| benchmark | ops/sec | hops/op | seconds |",
        "|---|---:|---:|---:|",
    ]
    for name in sorted(hot_path):
        entry = hot_path[name]
        speedup = entry.get("speedup_vs_scalar")
        suffix = f" ({speedup}x vs scalar)" if speedup is not None else ""
        lines.append(
            f"| {name}{suffix} | {entry['ops_per_sec']:,.1f} "
            f"| {entry['hops_per_op']:.3f} | {entry['seconds']:.3f} |"
        )
    lines.append("")
    if scaling:
        serial = next(
            (entry for entry in scaling.values() if entry.get("jobs") == 1), None
        )
        lines.extend(
            [
                "### parallel_scaling",
                "",
                "Accuracy-sweep wall clock at several `DHS_JOBS` widths; every",
                "width must reproduce the serial rows bit for bit (the",
                "`identical` column is a hard CI gate in "
                "`benchmarks/perf/check.py`).",
                "",
                "| workers | seconds | cells/sec | speedup vs serial | identical |",
                "|---:|---:|---:|---:|---|",
            ]
        )
        for name in sorted(scaling, key=lambda n: scaling[n].get("jobs", 0)):
            entry = scaling[name]
            if serial is not None and entry["seconds"] > 0:
                speedup_text = f"{serial['seconds'] / entry['seconds']:.2f}x"
            else:
                speedup_text = "-"
            lines.append(
                f"| {entry.get('jobs', '?')} | {entry['seconds']:.3f} "
                f"| {entry['ops_per_sec']:,.3f} | {speedup_text} "
                f"| {'yes' if entry.get('identical_to_serial') else 'NO'} |"
            )
        lines.append("")
    return lines


def dhslint_summary(source_dir: pathlib.Path) -> list[str]:
    """Markdown lines summarizing a dhslint run over ``source_dir``."""
    from tools.analyze import analyze_paths, load_config

    config = load_config(source_dir)
    report = analyze_paths([source_dir], config)
    try:
        shown = source_dir.resolve().relative_to(_REPO_ROOT)
    except ValueError:
        shown = source_dir
    lines = [
        "## static_analysis",
        "",
        f"`python -m tools.analyze {shown}` — "
        f"{len(report.violations)} violation(s), {report.suppressed} "
        f"suppression(s), {report.files} file(s) checked.",
        "",
    ]
    if report.counts_by_code:
        lines.append("| rule | violations |")
        lines.append("|---|---|")
        for code, count in report.counts_by_code.items():
            lines.append(f"| {code} | {count} |")
        lines.append("")
        for violation in report.violations:
            lines.append(f"- `{violation.render()}`")
        lines.append("")
    return lines


def build_report(results_dir: pathlib.Path) -> str:
    """Render all archived result tables as one markdown document."""
    available = {path.stem: path for path in sorted(results_dir.glob("*.txt"))}
    if not available:
        raise FileNotFoundError(
            f"no result files in {results_dir}; run "
            "'pytest benchmarks/ --benchmark-only' first"
        )
    ordered = [name for name in PREFERRED_ORDER if name in available]
    ordered += [name for name in sorted(available) if name not in ordered]

    lines = [
        "# Reproduction run report",
        "",
        "Generated from `benchmarks/results/` — see EXPERIMENTS.md for the",
        "paper-vs-measured discussion of each table.",
        "",
        "## Contents",
        "",
    ]
    repo_root = results_dir.parent.parent
    perf_lines = perf_summary(repo_root / "BENCH_perf.json")
    for name in ordered:
        lines.append(f"- [{name}](#{name.replace('_', '-')})")
    if perf_lines:
        lines.append("- [perf_microbenchmarks](#perf-microbenchmarks)")
    lines.append("- [static_analysis](#static-analysis)")
    lines.append("")
    for name in ordered:
        lines.append(f"## {name}")
        lines.append("")
        lines.append("```")
        lines.append(available[name].read_text().rstrip())
        lines.append("```")
        lines.append("")
    lines.extend(perf_lines)
    source_dir = repo_root / "src" / "repro"
    if source_dir.is_dir():
        lines.extend(dhslint_summary(source_dir))
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    results_dir = pathlib.Path(argv[1]) if len(argv) > 1 else (
        pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "results"
    )
    output = pathlib.Path(argv[2]) if len(argv) > 2 else (
        results_dir.parent / "REPORT.md"
    )
    output.write_text(build_report(results_dir))
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
