#!/usr/bin/env python3
"""Quickstart: count distinct items in a simulated P2P network with DHS.

Builds a 1024-node Chord-like overlay, records 100k documents into a
Distributed Hash Sketch from their owning nodes, and estimates the
distinct-document count from a random querying node — reporting the
costs the paper's evaluation tracks (hops, bandwidth, nodes visited).

Run:  python examples/quickstart.py
"""

from repro import ChordRing, DHSConfig, DistributedHashSketch
from repro.sim.seeds import rng_for
from repro.workloads.assignment import assign_items


def main() -> None:
    # 1. A 1024-node DHT overlay (the paper's evaluation substrate).
    ring = ChordRing.build(1024, seed=7)
    print(f"overlay up: {ring.size} nodes, {ring.space.bits}-bit id space")

    # 2. A DHS deployment: 256 bitmaps, super-LogLog estimator.
    dhs = DistributedHashSketch(ring, DHSConfig(num_bitmaps=256), seed=7)

    # 3. 100k documents, duplicated 2x, scattered over the nodes;
    #    every node bulk-inserts its own holdings (one message per
    #    id-space interval — the paper's batching trick).
    documents = [f"doc-{i}" for i in range(100_000)] * 2
    holdings = assign_items(documents, list(ring.node_ids()), seed=1)
    insert_cost = None
    for node_id, docs in holdings.items():
        cost = dhs.insert_bulk("documents", docs, origin=node_id)
        insert_cost = cost if insert_cost is None else insert_cost.add(cost)
    print(
        f"inserted {len(documents):,} document copies "
        f"({insert_cost.hops:,} routing hops, {insert_cost.bytes / 1024:,.0f} kB total)"
    )

    # 4. Any node can now estimate the *distinct* count.
    rng = rng_for(7, "querier")
    querier = ring.random_live_node(rng)
    result = dhs.count("documents", origin=querier)
    estimate = result.estimate()
    print(
        f"node {querier:#x} estimates {estimate:,.0f} distinct documents "
        f"(truth: 100,000; error {abs(estimate / 100_000 - 1):.1%})"
    )
    print(
        f"query cost: {result.cost.hops} hops, {result.unique_probed} nodes "
        f"probed, {result.cost.bytes / 1024:.1f} kB"
    )


if __name__ == "__main__":
    main()
