#!/usr/bin/env python3
"""RDBMS-over-P2P scenario: DHS histograms driving join ordering.

The paper's headline application (section 4.3 / 5.2): relations are
stored across a DHT; per-bucket DHS metrics maintain equi-width
histograms; any node can reconstruct them for ~the cost of one counting
operation and feed a Selinger-style optimizer — picking a join order
that ships a fraction of the bytes a naive order would.

Run:  python examples/histogram_query_opt.py
"""

from repro import ChordRing, DHSConfig, DistributedHashSketch
from repro.experiments.common import populate_histogram_metrics
from repro.histograms.buckets import BucketSpec
from repro.histograms.builder import DHSHistogramBuilder
from repro.histograms.histogram import Histogram
from repro.query.catalog import Catalog
from repro.query.engine import execute_plan
from repro.query.optimizer import optimize
from repro.query.plans import left_deep_plan
from repro.workloads.relations import standard_relations

N_NODES = 128
N_BUCKETS = 20
SCALE = 2e-3  # Q/R/S/T at 20k/40k/80k/160k tuples


def main() -> None:
    relations = standard_relations(scale=SCALE, seed=2)
    by_name = {r.name: r for r in relations}
    names = list(by_name)
    spec = BucketSpec.equi_width(relations[0].domain[0], relations[0].domain[1], N_BUCKETS)

    ring = ChordRing.build(N_NODES, seed=13)
    dhs = DistributedHashSketch(ring, DHSConfig(num_bitmaps=128), seed=13)
    for relation in relations:
        populate_histogram_metrics(dhs, relation, N_BUCKETS, seed=5)
        print(f"relation {relation.name}: {relation.size:,} tuples recorded "
              f"into {N_BUCKETS} bucket metrics")

    # A querying node reconstructs every histogram over the network.
    catalog = Catalog.from_dhs(dhs, relations, spec, origin=ring.node_ids()[0])
    cost = catalog.acquisition_cost
    print(f"\ncatalog reconstructed: {cost.hops} hops, "
          f"{cost.bytes / (1024 * 1024):.2f} MB")
    for name in names:
        truth = Histogram.exact(spec, by_name[name].values)
        err = catalog.entry(name).histogram.mean_cell_error(truth)
        print(f"  {name}: estimated {catalog.entry(name).cardinality:,.0f} tuples, "
              f"mean cell error {err:.1%}")

    # Optimize the 4-way equi-join from the reconstructed statistics.
    plan = optimize(catalog, names)
    chosen = execute_plan(plan.root, by_name)
    naive = execute_plan(left_deep_plan(sorted(names, key=lambda n: -by_name[n].size)), by_name)
    print(f"\noptimizer chose {plan.describe()}")
    print(f"  actual transfer: {chosen.shipped_mb:,.1f} MB")
    print(f"  naive largest-first order: {naive.shipped_mb:,.1f} MB")
    print(f"  histogram cost was {cost.bytes / (1024 * 1024):.2f} MB — "
          f"{naive.shipped_mb - chosen.shipped_mb:,.1f} MB saved")

    # Partial reconstruction: a range predicate only needs some buckets.
    builder = DHSHistogramBuilder(dhs, spec, "T")
    lo, hi = 1, 1500
    wanted = sorted({spec.bucket_index(v) for v in (lo, hi - 1)})
    partial = builder.reconstruct_buckets(range(wanted[0], wanted[-1] + 1))
    selectivity_est = partial.histogram.estimate_range(lo, hi)
    truth = int(((by_name["T"].values >= lo) & (by_name["T"].values < hi)).sum())
    print(f"\nrange predicate {lo} <= T.a < {hi}: estimated {selectivity_est:,.0f} "
          f"tuples (truth {truth:,}) for only {partial.cost.bytes / 1024:.1f} kB")


if __name__ == "__main__":
    main()
