#!/usr/bin/env python3
"""Network self-monitoring: estimating the live-node population.

The paper (section 3.2) lists "the cardinality of the node population"
as a basic metric DHS can estimate: every node registers *itself* under
a reserved metric with a soft-state TTL, and any node can then read off
how big the network currently is — through churn, without any central
membership service.

Run:  python examples/network_monitor.py
"""

from repro import ChordRing, DHSConfig, DistributedHashSketch
from repro.sim.seeds import rng_for

START_NODES = 600
TTL = 2  # rounds a registration stays alive without refresh


def main() -> None:
    ring = ChordRing.build(START_NODES, seed=41)
    # Counting ~N items over N nodes is DHS's hardest regime: each
    # logical bit has ~1 copy.  The paper's section 4.1 answer is to
    # raise the probe budget (eq. 6) and replicate set bits — hence the
    # beefier-than-default replication and lim.  The HyperLogLog
    # extension estimator adds a small-range correction, which suits
    # population counts (n/m is small here).
    dhs = DistributedHashSketch(
        ring,
        DHSConfig(num_bitmaps=64, estimator="hll", ttl=TTL, replication=8, lim=25),
        seed=41,
    )
    rng = rng_for(41, "churn")

    print(f"{'round':>5} {'live':>6} {'estimate':>9} {'err':>7}")
    for now in range(12):
        # Every live node re-registers itself this round.
        dhs.register_nodes(now=now)
        result = dhs.count_nodes(origin=ring.random_live_node(rng), now=now)
        live = ring.size
        estimate = result.estimate()
        print(f"{now:>5} {live:>6} {estimate:>9,.0f} {abs(estimate / live - 1):>6.1%}")

        # Churn between rounds: a burst of failures, then steady growth.
        if now == 4:
            victims = rng.sample(list(ring.node_ids()), 250)
            for victim in victims:
                ring.fail_node(victim)
            print("      --- 250 nodes crash ---")
        else:
            for _ in range(rng.randrange(5, 30)):
                candidate = rng.randrange(ring.space.size)
                if not ring.has_node(candidate):
                    ring.add_node(candidate)

    print("\nthe population estimate tracks the crash and the regrowth —")
    print("no membership server, no broadcast: one DHS metric.")


if __name__ == "__main__":
    main()
