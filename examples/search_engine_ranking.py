#!/usr/bin/env python3
"""Distributed search-engine scenario: keyword significance via DHS.

The paper's information-retrieval motivation: a P2P search engine needs
each keyword's significance — the ratio of distinct documents containing
the keyword to the total number of distinct indexed documents (an IDF
flavour).  Both numerator and denominator are distinct counts over data
scattered (and replicated) across peers, i.e. exactly DHS's job: one
metric per keyword plus one for the corpus, all readable in one scan.

Run:  python examples/search_engine_ranking.py
"""

import math

from repro import ChordRing, DHSConfig, DistributedHashSketch
from repro.sim.seeds import rng_for
from repro.workloads.zipf import ZipfGenerator

N_PEERS = 256
N_DOCS = 40_000
KEYWORDS = ["database", "network", "cardinality", "sketch", "epsilon"]
#: Fraction of documents containing each keyword (ground truth).
KEYWORD_DF = [0.30, 0.12, 0.05, 0.02, 0.004]
REPLICAS = 2  # each document indexed by 2 peers


def main() -> None:
    ring = ChordRing.build(N_PEERS, seed=31)
    dhs = DistributedHashSketch(ring, DHSConfig(num_bitmaps=256), seed=31)
    peers = list(ring.node_ids())
    rng = rng_for(31, "docs")
    zipf = ZipfGenerator(N_PEERS, theta=0.5)

    truth = {keyword: 0 for keyword in KEYWORDS}
    for doc in range(N_DOCS):
        doc_id = f"doc:{doc}"
        indexers = rng.sample(peers, REPLICAS)
        contains = [
            keyword
            for keyword, df in zip(KEYWORDS, KEYWORD_DF)
            if rng.random() < df
        ]
        for keyword in contains:
            truth[keyword] += 1
        for peer in indexers:  # replicated indexing => duplicate reports
            dhs.insert_bulk("corpus", [doc_id], origin=peer)
            for keyword in contains:
                dhs.insert_bulk(("kw", keyword), [doc_id], origin=peer)
    print(f"{N_DOCS:,} documents indexed by {REPLICAS} peers each on {N_PEERS} nodes")

    querier = peers[int(zipf.sample(1, seed=9)[0]) % len(peers)]
    metrics = ["corpus"] + [("kw", keyword) for keyword in KEYWORDS]
    result = dhs.count_many(metrics, origin=querier)
    corpus = result.estimates["corpus"]
    print(f"\ncorpus size estimate: {corpus:,.0f} (truth {N_DOCS:,}); "
          f"scan cost {result.cost.hops} hops / {result.cost.bytes / 1024:.1f} kB\n")
    print(f"{'keyword':<12} {'df est':>9} {'df true':>9} {'IDF est':>8} {'IDF true':>9}")
    for keyword in KEYWORDS:
        df_est = result.estimates[("kw", keyword)]
        df_true = truth[keyword]
        idf_est = math.log((corpus + 1) / (df_est + 1))
        idf_true = math.log((N_DOCS + 1) / (df_true + 1))
        print(f"{keyword:<12} {df_est:>9,.0f} {df_true:>9,} "
              f"{idf_est:>8.2f} {idf_true:>9.2f}")
    print("\nrarer keywords rank higher — and the whole significance table "
          "cost one DHS scan.")

    # Bonus: AND-query size estimation from the same reconstructed
    # sketches (inclusion-exclusion over sketch unions).
    from repro.sketches.setops import estimate_intersection

    a, b = ("kw", "database"), ("kw", "network")
    both = estimate_intersection(result.sketches[a], result.sketches[b])
    print(f"\nestimated documents matching 'database AND network': "
          f"~{max(0, both):,.0f} (no extra network cost — reused the scan)")


if __name__ == "__main__":
    main()
