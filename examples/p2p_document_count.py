#!/usr/bin/env python3
"""File-sharing scenario: duplicate-insensitive document counting.

The paper's first motivating application: "file-sharing peer-to-peer
systems often need to know the total number of (unique) documents
shared by their users".  Popular documents are replicated on many
peers, so naive counting wildly overestimates; DHS counts each
document once no matter how many peers share it.

The script also exercises churn: peers leave gracefully, peers crash,
and the soft-state TTL ages entries out until owners refresh them.

Run:  python examples/p2p_document_count.py
"""

from repro import ChordRing, DHSConfig, DistributedHashSketch
from repro.overlay.failures import fail_fraction
from repro.sim.seeds import rng_for
from repro.workloads.assignment import assign_items
from repro.workloads.multisets import zipf_duplicated_multiset

N_PEERS = 512
N_DOCUMENTS = 30_000
TOTAL_COPIES = 120_000  # popular files shared by many peers (Zipf)
TTL = 50


def main() -> None:
    ring = ChordRing.build(N_PEERS, seed=11)
    dhs = DistributedHashSketch(
        ring, DHSConfig(num_bitmaps=256, ttl=TTL, replication=2), seed=11
    )

    copies = zipf_duplicated_multiset(N_DOCUMENTS, total=TOTAL_COPIES, theta=1.1, seed=3)
    holdings = assign_items(copies, list(ring.node_ids()), seed=4)
    total_copies = sum(len(docs) for docs in holdings.values())
    print(f"{N_PEERS} peers share {total_copies:,} file copies "
          f"({N_DOCUMENTS:,} distinct files)")

    now = 0
    for node_id, docs in holdings.items():
        dhs.insert_bulk("files", docs, origin=node_id, now=now)

    rng = rng_for(11, "querier")
    result = dhs.count("files", origin=ring.random_live_node(rng), now=now)
    print(f"[t={now}] DHS estimate: {result.estimate():,.0f} distinct files "
          f"(error {abs(result.estimate() / N_DOCUMENTS - 1):.1%}) — "
          f"a duplicate-sensitive count would report ~{total_copies:,}")

    # --- churn: 15% of peers crash; replication keeps the count usable.
    failed = fail_fraction(ring, 0.15, seed=5)
    surviving = {n: docs for n, docs in holdings.items() if n not in set(failed)}
    result = dhs.count("files", origin=ring.random_live_node(rng), now=now)
    print(f"[t={now}] after {len(failed)} crashes: estimate "
          f"{result.estimate():,.0f} (replication degree 2 at work)")

    # --- soft state: without refresh, entries age out...
    now = TTL + 10
    stale = dhs.count("files", origin=ring.random_live_node(rng), now=now)
    print(f"[t={now}] without refresh: estimate {stale.estimate():,.0f} "
          f"(entries aged out — implicit deletion)")

    # ...and owners re-inserting their live holdings restore it.
    for node_id, docs in surviving.items():
        dhs.refresh("files", docs, origin=node_id, now=now)
    fresh = dhs.count("files", origin=ring.random_live_node(rng), now=now)
    survivors_truth = len({d for docs in surviving.values() for d in docs})
    print(f"[t={now}] after refresh: estimate {fresh.estimate():,.0f} "
          f"(live truth {survivors_truth:,})")
    freed = dhs.sweep_expired(now=now)
    print(f"storage sweep reclaimed {freed:,} expired entries")


if __name__ == "__main__":
    main()
