#!/usr/bin/env python3
"""Sensor-network scenario: duplicate-insensitive event counting.

The paper's sensor motivation: "multiple sensors may be sensing and
reporting the same event", so aggregates must be duplicate-insensitive.
Here overlapping sensors observe regional events and report them into a
multi-dimensional DHS — one metric per region plus a global one — and a
sink node reads every regional count in a single multi-metric scan
(section 4.2: hop cost independent of the number of dimensions).

Run:  python examples/sensor_aggregation.py
"""

from repro import ChordRing, DHSConfig, DistributedHashSketch
from repro.sim.seeds import rng_for

N_SENSORS = 128
N_REGIONS = 8
EVENTS_PER_REGION = 4_000
OBSERVERS_PER_EVENT = 3  # overlapping coverage => duplicate reports


def main() -> None:
    ring = ChordRing.build(N_SENSORS, seed=21)
    dhs = DistributedHashSketch(ring, DHSConfig(num_bitmaps=64), seed=21)
    sensors = list(ring.node_ids())
    rng = rng_for(21, "events")

    # Events happen per region; several nearby sensors report each one.
    truth = {}
    reports = 0
    for region in range(N_REGIONS):
        n_events = EVENTS_PER_REGION + rng.randrange(-1000, 1000)
        truth[region] = n_events
        region_sensors = sensors[region::N_REGIONS]
        for event in range(n_events):
            event_id = (region, "event", event)
            for observer in rng.sample(region_sensors, OBSERVERS_PER_EVENT):
                dhs.insert(("events", region), event_id, origin=observer)
                dhs.insert(("events", "global"), event_id, origin=observer)
                reports += 1
    print(f"{reports:,} sensor reports for {sum(truth.values()):,} distinct events "
          f"({OBSERVERS_PER_EVENT} observers each)")

    # The sink reads all regional metrics + the global one in ONE scan.
    metrics = [("events", region) for region in range(N_REGIONS)]
    metrics.append(("events", "global"))
    sink = sensors[0]
    result = dhs.count_many(metrics, origin=sink)
    print(f"\nsink scan: {result.cost.hops} hops, "
          f"{result.cost.bytes / 1024:.1f} kB for {len(metrics)} metrics")
    for region in range(N_REGIONS):
        estimate = result.estimates[("events", region)]
        print(f"  region {region}: ~{estimate:,.0f} events "
              f"(truth {truth[region]:,}, err {abs(estimate / truth[region] - 1):.1%})")
    global_estimate = result.estimates[("events", "global")]
    global_truth = sum(truth.values())
    print(f"  global: ~{global_estimate:,.0f} events "
          f"(truth {global_truth:,}, err {abs(global_estimate / global_truth - 1):.1%})")

    # Contrast: a single-metric count costs about the same hops.
    single = dhs.count(("events", 0), origin=sink)
    print(f"\nsingle-metric scan for comparison: {single.cost.hops} hops "
          f"(multi-metric paid {result.cost.hops}) — dimensions are ~free in hops")


if __name__ == "__main__":
    main()
